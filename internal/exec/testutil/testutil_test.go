package testutil_test

import (
	"testing"

	"txconcur/internal/chainsim"
	"txconcur/internal/exec"
	"txconcur/internal/exec/testutil"
)

// TestReplayMatchesSequentialEngine pins the contract the whole package
// rests on: the account-level replay is byte-identical to exec.Sequential —
// per-block roots and receipts — so asserting against testutil is asserting
// against the engine baseline.
func TestReplayMatchesSequentialEngine(t *testing.T) {
	for _, p := range []chainsim.Profile{
		chainsim.EthereumProfile(),
		chainsim.ShardSkewProfile(),
		chainsim.TokenHotKeyProfile(),
	} {
		pre, blocks, err := chainsim.GenerateAccountChain(p, 5, 17)
		if err != nil {
			t.Fatal(err)
		}
		seq := testutil.ReplaySequential(t, pre, blocks)
		work := pre.Copy()
		for i, blk := range blocks {
			res, err := exec.Sequential(work, blk)
			if err != nil {
				t.Fatalf("%s block %d: %v", p.Name, i, err)
			}
			if res.Root != seq.Roots[i] {
				t.Fatalf("%s block %d: replay root diverged from exec.Sequential", p.Name, i)
			}
			testutil.RequireReceipts(t, p.Name, i, res.Receipts, seq.Receipts[i])
		}
		if work.Root() != seq.Root() {
			t.Fatalf("%s: final roots diverged", p.Name)
		}
	}
}

// TestRequireChainDetectsDivergence exercises the failure detectors on a
// purpose-built mismatch via a sub-test runner that must fail.
func TestRequireChainDetectsDivergence(t *testing.T) {
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.EthereumProfile(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := testutil.ReplaySequential(t, pre, blocks)
	// A fresh (pre-chain) root must not pass as the chain root.
	if pre.Root() == seq.Root() {
		t.Fatal("fixture too trivial: chain did not change the root")
	}
}
