package exec

import (
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
)

// TestGeneratorReceiptsConsistentWithPreState is a regression test for two
// coupled bugs:
//
//  1. AcctGen.Next used to deploy a new era's contracts at the *start* of
//     the call, after callers had already snapshotted Chain().State() as
//     the pre-state — so the generator's receipts described executions the
//     snapshot could not reproduce.
//  2. Grouped used to adopt the supplied oracle receipts as the final
//     receipts, so fee crediting disagreed with what its workers actually
//     executed whenever the oracle receipts drifted from the pre-state.
//
// The test drives the exact pattern that exposed the mismatch: pre-state
// snapshots across era transitions, generator receipts fed to Grouped as
// the scheduling oracle, and root equality against the sequential baseline.
func TestGeneratorReceiptsConsistentWithPreState(t *testing.T) {
	g, err := chainsim.NewAcctGen(chainsim.EthereumProfile(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for {
		pre := g.Chain().State().Copy()
		blk, receipts, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seq, err := Sequential(pre.Copy(), blk)
		if err != nil {
			t.Fatal(err)
		}
		// The generator's receipts must be reproducible from the snapshot.
		for i, r := range seq.Receipts {
			if r.GasUsed != receipts[i].GasUsed || r.Status != receipts[i].Status {
				t.Fatalf("block %d tx %d: replayed gas/status %d/%d != generator %d/%d",
					blk.Height, i, r.GasUsed, r.Status, receipts[i].GasUsed, receipts[i].Status)
			}
		}
		grp, err := Grouped{Workers: 8, Receipts: receipts}.Execute(pre.Copy(), blk)
		if err != nil {
			t.Fatal(err)
		}
		if grp.Root != seq.Root {
			t.Fatalf("block %d: grouped root mismatch with generator receipts as oracle", blk.Height)
		}
	}
}

// TestGroupedWithStaleOracle: even a deliberately wrong scheduling oracle
// must never corrupt the result — the engine either reports the overlap
// (oracle mode) or produces the sequential root.
func TestGroupedWithStaleOracle(t *testing.T) {
	g, err := chainsim.NewAcctGen(chainsim.EthereumClassicProfile(), 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	var stale []*account.Receipt
	for {
		pre := g.Chain().State().Copy()
		blk, receipts, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seq, err := Sequential(pre.Copy(), blk)
		if err != nil {
			t.Fatal(err)
		}
		// Feed the previous block's receipts as a (nonsensical) oracle:
		// group shapes will be wrong. The engine must stay safe — either an
		// explicit ErrGroupOverlap, or a result equal to sequential.
		if n := len(stale); n > 0 {
			if n > len(blk.Txs) {
				n = len(blk.Txs)
			}
			res, err := Grouped{Workers: 4, Receipts: stale[:n]}.Execute(pre.Copy(), blk)
			if err == nil && res.Root != seq.Root {
				t.Fatalf("block %d: stale oracle produced a wrong root silently", blk.Height)
			}
		}
		stale = receipts
	}
}
