package exec

import (
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/types"
)

// shardedEquivalenceProfiles is the profile set the acceptance criterion
// names: every account-model chainsim profile, including the three
// cross-shard stress profiles.
func shardedEquivalenceProfiles() []chainsim.Profile {
	var ps []chainsim.Profile
	for _, p := range chainsim.AllProfiles() {
		if p.Model == chainsim.Account {
			ps = append(ps, p)
		}
	}
	ps = append(ps, chainsim.HotKeyProfiles()...)
	ps = append(ps, chainsim.ShardProfiles()...)
	ps = append(ps, chainsim.AdaptiveShardProfiles()...)
	return ps
}

// TestShardedSerialEquivalenceAllProfiles: the sharded engine must
// reproduce the sequential state root and receipts on every account-model
// chainsim profile, for shard counts {1, 2, 4, 8}, in both key-level and
// operation-level mode.
func TestShardedSerialEquivalenceAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("long: all profiles x shard counts x modes")
	}
	for _, p := range shardedEquivalenceProfiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			g, err := chainsim.NewAcctGen(p, 6, 11)
			if err != nil {
				t.Fatal(err)
			}
			for {
				pre := g.Chain().State().Copy()
				blk, _, ok, err := g.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				seq, err := Sequential(pre.Copy(), blk)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{1, 2, 4, 8} {
					for _, op := range []bool{false, true} {
						res, ss, err := Sharded{Workers: 8, Shards: shards, OpLevel: op}.ExecuteSharded(pre.Copy(), blk)
						if err != nil {
							t.Fatalf("block %d shards=%d op=%v: %v", blk.Height, shards, op, err)
						}
						if res.Root != seq.Root {
							t.Fatalf("block %d shards=%d op=%v: root mismatch (stats %+v)", blk.Height, shards, op, ss)
						}
						if len(res.Receipts) != len(seq.Receipts) {
							t.Fatalf("block %d shards=%d op=%v: receipt count", blk.Height, shards, op)
						}
						for i := range res.Receipts {
							a, b := res.Receipts[i], seq.Receipts[i]
							if a.Status != b.Status || a.GasUsed != b.GasUsed || a.TxHash != b.TxHash ||
								len(a.Internal) != len(b.Internal) {
								t.Fatalf("block %d shards=%d op=%v: receipt %d differs", blk.Height, shards, op, i)
							}
						}
						if ss.Cross+ss.Intra != len(blk.Txs) {
							t.Fatalf("block %d shards=%d op=%v: intra %d + cross %d != %d txs",
								blk.Height, shards, op, ss.Intra, ss.Cross, len(blk.Txs))
						}
					}
				}
			}
		})
	}
}

// TestShardedSingleShardMatchesUnsharded: with one shard nothing is ever
// cross-shard, and the engine must agree with Sequential on a nonce-chained,
// conflict-heavy fixture.
func TestShardedSingleShard(t *testing.T) {
	pre, blocks := fuzzChain(42, 9, 2, 60, 70, 1)
	work := pre.Copy()
	for _, blk := range blocks {
		seq, err := Sequential(work.Copy(), blk)
		if err != nil {
			t.Fatal(err)
		}
		res, ss, err := Sharded{Workers: 4, Shards: 1}.ExecuteSharded(work.Copy(), blk)
		if err != nil {
			t.Fatal(err)
		}
		if res.Root != seq.Root {
			t.Fatal("single-shard root mismatch")
		}
		if ss.Cross != 0 {
			t.Fatalf("single shard reported %d cross-shard txs", ss.Cross)
		}
		if _, err := Sequential(work, blk); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedCrossShardTransfer drives one deliberate cross-shard transfer
// and checks classification plus result.
func TestShardedCrossShardTransfer(t *testing.T) {
	const shards = 4
	// Find a sender and a receiver on different shards.
	var from, to types.Address
	for i := uint64(0); ; i++ {
		from = types.AddressFromUint64("xshard/sender", i)
		if core.ShardOf(from, shards) == 0 {
			break
		}
	}
	for i := uint64(0); ; i++ {
		to = types.AddressFromUint64("xshard/receiver", i)
		if core.ShardOf(to, shards) == 1 {
			break
		}
	}
	st := account.NewStateDB()
	st.AddBalance(from, 1_000_000)
	st.DiscardJournal()
	blk := &account.Block{
		Height:   1,
		Time:     1_600_000_000,
		Coinbase: types.AddressFromUint64("xshard/miner", 0),
		Txs: []*account.Transaction{
			{From: from, To: to, Value: 500, Nonce: 0, GasLimit: account.GasTx, GasPrice: 1},
		},
	}
	seq, err := Sequential(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []bool{false, true} {
		res, ss, err := Sharded{Workers: 4, Shards: shards, OpLevel: op}.ExecuteSharded(st.Copy(), blk)
		if err != nil {
			t.Fatalf("op=%v: %v", op, err)
		}
		if res.Root != seq.Root {
			t.Fatalf("op=%v: root mismatch", op)
		}
		if ss.Cross != 1 || ss.Intra != 0 {
			t.Fatalf("op=%v: classification = %+v, want 1 cross", op, ss)
		}
		if ss.Fallback {
			t.Fatalf("op=%v: unexpected fallback", op)
		}
		// A single staged transfer validates cleanly: no abort.
		if ss.CrossAborts != 0 {
			t.Fatalf("op=%v: aborts = %d, want 0", op, ss.CrossAborts)
		}
	}
}

// TestShardedHotKeyDeltasCommute: a block of transfers from senders on many
// shards into one hot address. Key-level, the staged results all read the
// hot balance, so all but the first cross transaction abort and re-execute;
// operation-level the credits are blind deltas that merge commutatively —
// zero aborts, no fallback, and the speed-up survives the skew.
func TestShardedHotKeyDeltasCommute(t *testing.T) {
	const shards = 4
	hot := types.AddressFromUint64("hotshard/sink", 3)
	st := account.NewStateDB()
	var txs []*account.Transaction
	for i := uint64(0); i < 48; i++ {
		from := types.AddressFromUint64("hotshard/payer", i)
		st.AddBalance(from, 1_000_000)
		txs = append(txs, &account.Transaction{
			From: from, To: hot, Value: 100 + account.Amount(i),
			Nonce: 0, GasLimit: account.GasTx, GasPrice: 1,
		})
	}
	st.DiscardJournal()
	blk := &account.Block{
		Height: 1, Time: 1_600_000_000,
		Coinbase: types.AddressFromUint64("hotshard/miner", 0),
		Txs:      txs,
	}
	seq, err := Sequential(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}

	key, ssKey, err := Sharded{Workers: 8, Shards: shards}.ExecuteSharded(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	op, ssOp, err := Sharded{Workers: 8, Shards: shards, OpLevel: true}.ExecuteSharded(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	if key.Root != seq.Root || op.Root != seq.Root {
		t.Fatal("hot-key root mismatch")
	}
	if ssOp.Fallback || ssKey.Fallback {
		t.Fatalf("unexpected fallback: key=%+v op=%+v", ssKey, ssOp)
	}
	if ssOp.CrossAborts != 0 {
		t.Fatalf("op-level aborts = %d, want 0 (deltas commute)", ssOp.CrossAborts)
	}
	if ssKey.CrossAborts <= ssOp.CrossAborts {
		t.Fatalf("key-level aborts (%d) not above op-level (%d) on a hot key",
			ssKey.CrossAborts, ssOp.CrossAborts)
	}
	if op.Stats.Speedup <= key.Stats.Speedup {
		t.Fatalf("op-level speed-up %.2f not above key-level %.2f", op.Stats.Speedup, key.Stats.Speedup)
	}
}

// TestShardedWorkerValidation: worker counts below one are rejected before
// any scheduling arithmetic runs.
func TestShardedWorkerValidation(t *testing.T) {
	st := account.NewStateDB()
	blk := &account.Block{Coinbase: types.AddressFromUint64("sv/miner", 0)}
	if _, _, err := (Sharded{Workers: 0, Shards: 4}).ExecuteSharded(st, blk); err == nil {
		t.Fatal("zero workers accepted")
	}
	// Shards <= 0 normalises to one shard rather than failing.
	res, ss, err := (Sharded{Workers: 2, Shards: -3}).ExecuteSharded(st, blk)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Shards != 1 {
		t.Fatalf("normalised shards = %d, want 1", ss.Shards)
	}
	if res.Stats.ParUnits != 0 {
		t.Fatalf("empty block ParUnits = %d", res.Stats.ParUnits)
	}
}

// TestShardedChainReplay replays a multi-block fuzz chain block by block,
// feeding each block's exact pre-state — the pattern E9 uses.
func TestShardedChainReplay(t *testing.T) {
	pre, blocks := fuzzChain(7, 24, 3, 75, 85, 2)
	work := pre.Copy()
	for bi, blk := range blocks {
		seq, err := Sequential(work.Copy(), blk)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 3, 8} {
			for _, op := range []bool{false, true} {
				res, _, err := Sharded{Workers: 6, Shards: shards, OpLevel: op}.ExecuteSharded(work.Copy(), blk)
				if err != nil {
					t.Fatalf("block %d shards=%d op=%v: %v", bi, shards, op, err)
				}
				if res.Root != seq.Root {
					t.Fatalf("block %d shards=%d op=%v: root mismatch", bi, shards, op)
				}
			}
		}
		if _, err := Sequential(work, blk); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedGasAccountsForBins: GasPar must include the shard-local bin's
// sequential gas, matching the speculative engine's gas model — an earlier
// version charged only the phase-1 spread and overstated gas speed-ups on
// conflicted workloads.
func TestShardedGasAccountsForBins(t *testing.T) {
	hot := types.AddressFromUint64("gasbin/sink", 0)
	st := account.NewStateDB()
	var txs []*account.Transaction
	for i := uint64(0); i < 16; i++ {
		from := types.AddressFromUint64("gasbin/payer", i)
		st.AddBalance(from, 1_000_000)
		txs = append(txs, &account.Transaction{
			From: from, To: hot, Value: 100,
			Nonce: 0, GasLimit: account.GasTx, GasPrice: 1,
		})
	}
	st.DiscardJournal()
	blk := &account.Block{
		Height: 1, Time: 1_600_000_000,
		Coinbase: types.AddressFromUint64("gasbin/miner", 0),
		Txs:      txs,
	}
	// Key-level, one shard: every transaction collides on the hot balance
	// and re-executes in the shard bin, so the sequential gas term must
	// push GasPar past the pure phase-1 spread.
	res, ss, err := Sharded{Workers: 8, Shards: 1}.ExecuteSharded(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Fallback {
		t.Fatalf("unexpected fallback: %+v", ss)
	}
	spread := (res.Stats.GasSeq + 7) / 8
	if res.Stats.GasPar <= spread {
		t.Fatalf("GasPar %d not above phase-1 spread %d despite %d binned txs",
			res.Stats.GasPar, spread, res.Stats.Conflicted)
	}
	// Same schedule as the speculative engine: gas models must agree.
	spec, err := Speculative{Workers: 8}.Execute(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GasPar != spec.Stats.GasPar {
		t.Fatalf("single-shard GasPar %d != speculative GasPar %d", res.Stats.GasPar, spec.Stats.GasPar)
	}
}

// TestShardedSpeedupBoundedByWorkers: with ⌈n/s⌉ workers credited per
// shard, s·⌈n/s⌉ exceeds n for non-dividing configurations; the core-budget
// floor must keep the reported speed-up within the configured core count.
func TestShardedSpeedupBoundedByWorkers(t *testing.T) {
	st := account.NewStateDB()
	var txs []*account.Transaction
	for i := uint64(0); i < 80; i++ {
		// Self-payments: each transaction touches only its own account, so
		// every one is intra-shard and conflict-free at any shard count.
		a := types.AddressFromUint64("budget/self", i)
		st.AddBalance(a, 1_000_000)
		txs = append(txs, &account.Transaction{
			From: a, To: a, Value: 1, Nonce: 0, GasLimit: account.GasTx, GasPrice: 1,
		})
	}
	st.DiscardJournal()
	blk := &account.Block{
		Height: 1, Time: 1_600_000_000,
		Coinbase: types.AddressFromUint64("budget/miner", 0),
		Txs:      txs,
	}
	res, ss, err := Sharded{Workers: 2, Shards: 8}.ExecuteSharded(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Fallback || ss.Cross != 0 {
		t.Fatalf("unexpected sharding outcome: %+v", ss)
	}
	if res.Stats.Speedup > 2+1e-9 {
		t.Fatalf("speed-up %.2f exceeds the 2-worker budget (ParUnits %d for %d txs)",
			res.Stats.Speedup, res.Stats.ParUnits, res.Stats.Txs)
	}
	if res.Stats.GasSpeedup > 2+1e-9 {
		t.Fatalf("gas speed-up %.2f exceeds the 2-worker budget", res.Stats.GasSpeedup)
	}
}
