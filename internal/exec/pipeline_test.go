package exec

import (
	"errors"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/exec/testutil"
)

// Sequential replay — not the generator's receipt stream — is the
// pipeline's ground truth: the generator injects each era's popular
// contracts directly into state between blocks, so a pure block replay can
// diverge from the generated history at era boundaries while still being a
// perfectly valid chain. testutil.ReplaySequential reproduces Sequential
// exactly (the testutil package's own tests pin that equivalence).

// genChain generates numBlocks blocks for the profile and returns the state
// before the first block plus the block sequence.
func genChain(t *testing.T, p chainsim.Profile, numBlocks int, seed int64) (*account.StateDB, []*account.Block) {
	t.Helper()
	g, err := chainsim.NewAcctGen(p, numBlocks, seed)
	if err != nil {
		t.Fatal(err)
	}
	pre := g.Chain().State().Copy()
	var blocks []*account.Block
	for {
		blk, _, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		blocks = append(blocks, blk)
	}
	return pre, blocks
}

// TestPipelineSerialEquivalenceAllProfiles is the pipeline's regression
// suite: on every account-model chainsim profile, executing the whole chain
// through the pipelined engine must produce receipts and a final state root
// identical to the Sequential engine. (UTXO profiles have no account state
// for the engine to run on and are exercised by GroupedUTXO instead.)
func TestPipelineSerialEquivalenceAllProfiles(t *testing.T) {
	for _, p := range chainsim.AllProfiles() {
		if p.Model != chainsim.Account {
			continue
		}
		for _, depth := range []int{1, 3} {
			pre, blocks := genChain(t, p, 12, 11)
			seq := testutil.ReplaySequential(t, pre, blocks)

			pipeSt := pre.Copy()
			res, err := Pipeline{Workers: 8, Depth: depth}.ExecuteChain(pipeSt, blocks)
			if err != nil {
				t.Fatalf("%s depth %d: %v", p.Name, depth, err)
			}
			seq.RequireChain(t, p.Name, res.Root, res.Receipts)
			if res.Stats.Txs > 0 && res.Stats.ParUnits <= 0 {
				t.Fatalf("%s depth %d: non-positive ParUnits %d", p.Name, depth, res.Stats.ParUnits)
			}
		}
	}
}

// TestPipelineSingleBlock mirrors the per-block engines: Execute on one
// block must match Sequential from the same pre-state, for every block of a
// generated history (using the generator's own pre-states, as the other
// engines' tests do).
func TestPipelineSingleBlock(t *testing.T) {
	g, err := chainsim.NewAcctGen(chainsim.EthereumProfile(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for {
		pre := g.Chain().State().Copy()
		blk, _, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seq, err := Sequential(pre.Copy(), blk)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Pipeline{Workers: 8}.Execute(pre.Copy(), blk)
		if err != nil {
			t.Fatal(err)
		}
		if res.Root != seq.Root {
			t.Fatalf("block %d: pipeline root mismatch", blk.Height)
		}
		for i, want := range seq.Receipts {
			if got := res.Receipts[i]; got.GasUsed != want.GasUsed || got.Status != want.Status {
				t.Fatalf("block %d tx %d: receipt mismatch", blk.Height, i)
			}
		}
	}
}

// TestPipelineCrossBlockConflicts drives the cross-block staleness path
// directly: consecutive blocks reusing the same senders force phase-1 nonce
// failures and stale balance reads, all of which must be repaired by
// re-execution, never silently committed.
func TestPipelineCrossBlockConflicts(t *testing.T) {
	pre, blocks := genChain(t, chainsim.EthereumClassicProfile(), 8, 3)
	seq := testutil.ReplaySequential(t, pre, blocks)

	res, err := Pipeline{Workers: 4, Depth: 2}.ExecuteChain(pre.Copy(), blocks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root != seq.Root() {
		t.Fatal("pipeline root mismatch under cross-block conflicts")
	}
	// The workloads reuse senders across blocks, so at least one block must
	// have taken the re-execution path — otherwise this test exercises
	// nothing.
	total := 0
	for _, bs := range res.Blocks {
		total += bs.Reexecuted
	}
	if total == 0 {
		t.Fatal("expected some cross-block re-executions in this workload")
	}
	if res.Stats.Retries != total {
		t.Fatalf("Stats.Retries = %d, want %d", res.Stats.Retries, total)
	}
}

// TestPipelineEdgeCases covers the degenerate inputs.
func TestPipelineEdgeCases(t *testing.T) {
	if _, err := (Pipeline{}).ExecuteChain(account.NewStateDB(), nil); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("workers=0: err = %v, want ErrNoWorkers", err)
	}

	st := account.NewStateDB()
	res, err := Pipeline{Workers: 2}.ExecuteChain(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Txs != 0 || res.Stats.ParUnits != 0 || res.Stats.Speedup != 1 {
		t.Fatalf("empty chain stats = %+v", res.Stats)
	}
	if res.Root != st.Root() {
		t.Fatal("empty chain must not change the state")
	}
}

// TestFlowShopMakespan pins the pipelined schedule-length recurrence.
func TestFlowShopMakespan(t *testing.T) {
	cases := []struct {
		p1, p2 []int
		want   int
	}{
		{nil, nil, 0},
		{[]int{5}, []int{2}, 7},
		// Validation fully hidden behind the next block's execution.
		{[]int{5, 5, 5}, []int{1, 1, 1}, 16},
		// Validation dominates: machine 2 becomes the bottleneck.
		{[]int{2, 2, 2}, []int{5, 5, 5}, 17},
	}
	for _, c := range cases {
		if got := flowShopMakespan(c.p1, c.p2); got != c.want {
			t.Fatalf("flowShopMakespan(%v, %v) = %d, want %d", c.p1, c.p2, got, c.want)
		}
	}
}
