package exec_test

import (
	"fmt"

	"txconcur/internal/account"
	"txconcur/internal/exec"
	"txconcur/internal/heat"
	"txconcur/internal/types"
)

// exampleState endows four externally owned accounts so the example blocks
// below pass the envelope checks.
func exampleState() *account.StateDB {
	st := account.NewStateDB()
	for i := uint64(1); i <= 4; i++ {
		st.AddBalance(types.AddressFromUint64("example", i), 1_000_000_000)
	}
	st.DiscardJournal()
	return st
}

// ExampleSequential executes a two-transfer block with the baseline engine.
func ExampleSequential() {
	st := exampleState()
	alice := types.AddressFromUint64("example", 1)
	bob := types.AddressFromUint64("example", 2)
	sink := types.AddressFromUint64("example", 9)
	blk := &account.Block{
		Coinbase: types.AddressFromUint64("example", 99),
		Txs: []*account.Transaction{
			{From: alice, To: sink, Value: 100, Nonce: 0, GasLimit: 21000, GasPrice: 1},
			{From: bob, To: sink, Value: 200, Nonce: 0, GasLimit: 21000, GasPrice: 1},
		},
	}
	res, err := exec.Sequential(st, blk)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("receipts:", len(res.Receipts))
	fmt.Println("sink balance:", st.GetBalance(sink))
	// Output:
	// receipts: 2
	// sink balance: 300
}

// ExamplePipeline_Execute runs one block through the pipelined two-phase
// engine and checks serial equivalence against the baseline: independent
// transfers validate on their phase-1 results, so nothing is re-executed.
func ExamplePipeline_Execute() {
	st := exampleState()
	alice := types.AddressFromUint64("example", 1)
	bob := types.AddressFromUint64("example", 2)
	blk := &account.Block{
		Coinbase: types.AddressFromUint64("example", 99),
		Txs: []*account.Transaction{
			{From: alice, To: types.AddressFromUint64("example", 3), Value: 7, Nonce: 0, GasLimit: 21000, GasPrice: 1},
			{From: bob, To: types.AddressFromUint64("example", 4), Value: 9, Nonce: 0, GasLimit: 21000, GasPrice: 1},
		},
	}
	seq, err := exec.Sequential(exampleState(), blk)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := exec.Pipeline{Workers: 4}.Execute(st, blk)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("root matches sequential:", res.Root == seq.Root)
	fmt.Println("re-executed:", res.Stats.Retries)
	// Output:
	// root matches sequential: true
	// re-executed: 0
}

// ExampleSharded partitions state across four committees and executes a
// block whose transfers cross shard boundaries — the traffic Zilliqa-style
// sharding forfeits. The deterministic cross-shard commit validates the
// staged results, so the root still equals the sequential baseline and no
// whole-block fallback is needed.
func ExampleSharded() {
	st := exampleState()
	blk := &account.Block{
		Coinbase: types.AddressFromUint64("example", 99),
		Txs: []*account.Transaction{
			{From: types.AddressFromUint64("example", 1), To: types.AddressFromUint64("example", 2),
				Value: 100, Nonce: 0, GasLimit: 21000, GasPrice: 1},
			{From: types.AddressFromUint64("example", 3), To: types.AddressFromUint64("example", 4),
				Value: 200, Nonce: 0, GasLimit: 21000, GasPrice: 1},
		},
	}
	seq, err := exec.Sequential(exampleState(), blk)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, ss, err := exec.Sharded{Workers: 4, Shards: 4}.ExecuteSharded(st, blk)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("root matches sequential:", res.Root == seq.Root)
	fmt.Println("classified:", ss.Intra+ss.Cross, "txs across", ss.Shards, "shards")
	fmt.Println("fallback:", ss.Fallback)
	// Output:
	// root matches sequential: true
	// classified: 2 txs across 4 shards
	// fallback: false
}

// ExampleSharded_ExecuteChain pipelines two dependent blocks through the
// sharded engine: the per-shard speculative phase 1 of block 1 overlaps the
// cross-shard commit of block 0. The second block spends from the same
// sender, so its phase-1 run (against a lagged per-shard snapshot) goes
// stale and is transparently re-executed — the result still equals the
// sequential chain.
func ExampleSharded_ExecuteChain() {
	alice := types.AddressFromUint64("example", 1)
	sink := types.AddressFromUint64("example", 9)
	coinbase := types.AddressFromUint64("example", 99)
	blocks := []*account.Block{
		{Height: 0, Coinbase: coinbase, Txs: []*account.Transaction{
			{From: alice, To: sink, Value: 10, Nonce: 0, GasLimit: 21000, GasPrice: 1},
		}},
		{Height: 1, Coinbase: coinbase, Txs: []*account.Transaction{
			{From: alice, To: sink, Value: 20, Nonce: 1, GasLimit: 21000, GasPrice: 1},
		}},
	}

	seqSt := exampleState()
	for _, blk := range blocks {
		if _, err := exec.Sequential(seqSt, blk); err != nil {
			fmt.Println(err)
			return
		}
	}

	shardSt := exampleState()
	res, css, err := exec.Sharded{Workers: 4, Shards: 2, Depth: 2}.ExecuteChain(shardSt, blocks)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("blocks:", len(res.Receipts))
	fmt.Println("root matches sequential:", res.Root == seqSt.Root())
	fmt.Println("sink balance:", shardSt.GetBalance(sink))
	fmt.Println("fallback blocks:", css.FallbackBlocks)
	// Output:
	// blocks: 2
	// root matches sequential: true
	// sink balance: 30
	// fallback blocks: 0
}

// ExampleSharded_adaptiveMap runs a sweep-bot chain — one sender paying the
// same collector on every block — through the sharded chain engine with an
// adaptive shard map. The map observes the pair being serialised together,
// co-locates it at the first epoch boundary (migrating the moved state
// between the per-shard stores), and the result still equals the
// sequential chain.
func ExampleSharded_adaptiveMap() {
	bot := types.AddressFromUint64("example", 1)
	collector := types.AddressFromUint64("example", 9)
	coinbase := types.AddressFromUint64("example", 99)
	var blocks []*account.Block
	nonce := uint64(0)
	for h := 0; h < 6; h++ {
		var txs []*account.Transaction
		for i := 0; i < 4; i++ {
			txs = append(txs, &account.Transaction{
				From: bot, To: collector, Value: 5, Nonce: nonce, GasLimit: 21000, GasPrice: 1,
			})
			nonce++
		}
		blocks = append(blocks, &account.Block{Height: uint64(h), Coinbase: coinbase, Txs: txs})
	}

	seqSt := exampleState()
	for _, blk := range blocks {
		if _, err := exec.Sequential(seqSt, blk); err != nil {
			fmt.Println(err)
			return
		}
	}

	m := heat.NewAdaptiveMap(4, nil)
	e := exec.Sharded{Workers: 4, Depth: 2, Map: m, RebalanceEvery: 2}
	res, css, err := e.ExecuteChain(exampleState(), blocks)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("root matches sequential:", res.Root == seqSt.Root())
	fmt.Println("bot and collector co-located:", m.Shard(bot) == m.Shard(collector))
	fmt.Println("rebalance epochs:", css.RebalanceEpochs)
	fmt.Println("migrated keys:", css.Migrations > 0)
	// Output:
	// root matches sequential: true
	// bot and collector co-located: true
	// rebalance epochs: 2
	// migrated keys: true
}

// ExamplePipeline_ExecuteChain pipelines two dependent blocks: the second
// block spends from the same sender, so its phase-1 run (against a stale
// snapshot) fails the nonce check and is transparently re-executed in
// phase 2 — the result still equals the sequential chain.
func ExamplePipeline_ExecuteChain() {
	alice := types.AddressFromUint64("example", 1)
	sink := types.AddressFromUint64("example", 9)
	coinbase := types.AddressFromUint64("example", 99)
	blocks := []*account.Block{
		{Height: 0, Coinbase: coinbase, Txs: []*account.Transaction{
			{From: alice, To: sink, Value: 10, Nonce: 0, GasLimit: 21000, GasPrice: 1},
		}},
		{Height: 1, Coinbase: coinbase, Txs: []*account.Transaction{
			{From: alice, To: sink, Value: 20, Nonce: 1, GasLimit: 21000, GasPrice: 1},
		}},
	}

	seqSt := exampleState()
	for _, blk := range blocks {
		if _, err := exec.Sequential(seqSt, blk); err != nil {
			fmt.Println(err)
			return
		}
	}

	pipeSt := exampleState()
	res, err := exec.Pipeline{Workers: 4, Depth: 2}.ExecuteChain(pipeSt, blocks)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("blocks:", len(res.Receipts))
	fmt.Println("root matches sequential:", res.Root == seqSt.Root())
	fmt.Println("sink balance:", pipeSt.GetBalance(sink))
	// Output:
	// blocks: 2
	// root matches sequential: true
	// sink balance: 30
}
