package exec

import (
	"time"

	"txconcur/internal/account"
	"txconcur/internal/core"
)

// ExecuteChainStream is Sharded.ExecuteChain over a live block stream: the
// incremental chain driver behind the streaming block-builder service.
// Blocks are consumed from the channel as the builder closes them, the
// per-shard speculative phase 1 of a later block overlapping the
// cross-shard commit of an earlier one exactly as in the batch driver; the
// stream ends when the channel is closed (a nil block also ends it,
// defensively). st is mutated on success, after every streamed block has
// committed.
//
// onCommit, if non-nil, fires synchronously after each block's writes are
// durable on every shard — the hook the builder service uses to record
// submit → committed latency. idx is the block's chain-wide index (0-based
// in stream order). onCommit runs on the committer goroutine: a slow
// callback stalls the commit stage (though phase 1 keeps speculating up to
// Depth blocks ahead).
//
// Determinism: the fixed-lag snapshot discipline runs on epoch-relative
// block positions, never on producer timing, so feeding the same block
// sequence through a channel — however bursty — produces the same root,
// receipts, re-execution counts and schedule stats as ExecuteChain on the
// equivalent slice. The streaming tests pin that equivalence.
//
// With an adaptive map and RebalanceEvery > 0 the stream is segmented into
// epochs like the batch driver. At each boundary the driver must decide
// whether more blocks are coming (the batch driver rebalances only between
// epochs, never after the last block), so it blocks reading one look-ahead
// block before migrating; a closed channel instead ends the chain with no
// trailing rebalance — again matching the batch segmentation exactly.
//
// On error the committer aborts and the speculative stage stops reading the
// channel; the caller owns stopping its producers (the builder does so via
// its context).
func (e Sharded) ExecuteChainStream(st *account.StateDB, blocks <-chan *account.Block,
	onCommit func(idx int, blk *account.Block, receipts []*account.Receipt)) (*ChainResult, *ChainShardStats, error) {
	if e.Workers < 1 {
		return nil, nil, ErrNoWorkers
	}
	m := e.shardMap()
	//txlint:clock wall-clock timing metric for reported stats only; committed state never depends on it
	start := time.Now()

	am, adaptive := m.(core.AdaptiveShardMap)
	// A streamed chain has no known length: without rebalancing the whole
	// stream is one epoch (epochLen caps nothing), with rebalancing the
	// boundary falls every RebalanceEvery blocks as in the batch driver.
	epochLen := int(^uint(0) >> 1)
	if adaptive && e.RebalanceEvery > 0 {
		epochLen = e.RebalanceEvery
	}
	if epochLen < 1 {
		epochLen = 1
	}

	c := e.newShardedChain(st, m, 0)
	c.startCheckpoints(e.Checkpoint)
	var pushback *account.Block
	for {
		src := func(rel int, quit <-chan struct{}) (*account.Block, bool) {
			if rel >= epochLen {
				return nil, false
			}
			if pushback != nil {
				b := pushback
				pushback = nil
				return b, true
			}
			//txlint:clock receive-vs-quit arbitration; block order is the channel's FIFO order whichever case fires
			select {
			case b, ok := <-blocks:
				if !ok || b == nil {
					return nil, false
				}
				return b, true
			case <-quit:
				return nil, false
			}
		}
		n, err := e.runShardedEpoch(c, src, am, onCommit)
		if err != nil {
			c.closeCheckpoints()
			return nil, nil, err
		}
		if n < epochLen {
			// The stream closed mid-epoch; the batch driver would not
			// rebalance after its last block either.
			break
		}
		// Epoch boundary: peek one block ahead (blocking — the pipeline is
		// drained, nothing else is in flight) to learn whether the chain
		// continues before paying for a rebalance.
		b, ok := <-blocks
		if !ok || b == nil {
			break
		}
		pushback = b
		if adaptive && e.RebalanceEvery > 0 {
			e.migrateShards(c, am.Rebalance())
		}
	}
	return e.finishChain(c, start)
}
