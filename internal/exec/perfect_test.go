package exec

import (
	"errors"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/core"
)

func TestPerfectSpeculativeWorkedExample(t *testing.T) {
	// A Figure-1b-shaped block: 16 txs, 14 conflicted. With perfect
	// information and 16 cores, T' = ⌈2/16⌉ + 14 = 15 — same as the blind
	// engine here, which is the paper's §V-A point that perfect knowledge
	// brings little once the conflict rate is high.
	txs := make([]*account.Transaction, 0, 16)
	for i := uint64(0); i < 9; i++ {
		txs = append(txs, transfer(i, 30, 0, 10))
	}
	for i := uint64(9); i < 12; i++ {
		txs = append(txs, transfer(i, 31, 0, 10))
	}
	txs = append(txs, transfer(12, 20, 0, 10), transfer(12, 21, 1, 10))
	txs = append(txs, transfer(13, 22, 0, 10), transfer(14, 23, 0, 10))
	st := fundedStateFor(t, txs)
	blk := testBlock(txs...)

	seq, err := Sequential(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PerfectSpeculative{Workers: 16, Receipts: seq.Receipts}.Execute(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root != seq.Root {
		t.Fatal("root mismatch")
	}
	if res.Stats.Conflicted != 14 {
		t.Fatalf("conflicted = %d, want 14", res.Stats.Conflicted)
	}
	if res.Stats.ParUnits != 15 {
		t.Fatalf("T' = %d, want 15", res.Stats.ParUnits)
	}
	// The preprocessing cost K shifts the schedule length as in the model.
	withK, err := PerfectSpeculative{Workers: 16, Receipts: seq.Receipts, PreprocessCost: 5}.Execute(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	if withK.Stats.ParUnits != 20 {
		t.Fatalf("T' with K=5 = %d, want 20", withK.Stats.ParUnits)
	}
}

func TestPerfectSpeculativeDerivesOracle(t *testing.T) {
	// Without supplied receipts the engine pre-runs sequentially; result
	// must still match.
	st := fundedState(10)
	blk := testBlock(
		transfer(0, 5, 0, 100),
		transfer(1, 5, 0, 100),
		transfer(2, 6, 0, 100),
	)
	seq, err := Sequential(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PerfectSpeculative{Workers: 4}.Execute(st.Copy(), blk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root != seq.Root {
		t.Fatal("root mismatch")
	}
	if res.Stats.Conflicted != 2 {
		t.Fatalf("conflicted = %d, want 2 (shared receiver)", res.Stats.Conflicted)
	}
}

func TestPerfectSpeculativeValidation(t *testing.T) {
	st := fundedState(2)
	blk := testBlock(transfer(0, 1, 0, 1))
	if _, err := (PerfectSpeculative{}).Execute(st.Copy(), blk); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("no workers: %v", err)
	}
	if _, err := (PerfectSpeculative{Workers: 2}).Execute(st.Copy(), testBlock()); err != nil {
		t.Fatalf("empty block: %v", err)
	}
}

// TestPerfectTracksModel: over a generated workload, the engine's unit
// schedule must match core.PerfectInfoSpeedup's denominator (with the exact
// ceil refinement) to within one unit per block.
func TestPerfectTracksModel(t *testing.T) {
	g, err := chainsim.NewAcctGen(chainsim.EthereumProfile(), 6, 13)
	if err != nil {
		t.Fatal(err)
	}
	for {
		pre := g.Chain().State().Copy()
		blk, receipts, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(blk.Txs) == 0 {
			continue
		}
		m := core.MeasureAccountBlock(blk, receipts)
		res, err := PerfectSpeculative{Workers: 8, Receipts: receipts}.Execute(pre, blk)
		if err != nil {
			t.Fatal(err)
		}
		// Engine: ceil((1-c)x/n) + cx. Model (printed): floor((1-c)x/n)+1+cx.
		want := ceilDiv(m.NumTxs-m.Conflicted, 8) + m.Conflicted
		if res.Stats.ParUnits != want {
			t.Fatalf("block %d: ParUnits = %d, want %d", blk.Height, res.Stats.ParUnits, want)
		}
	}
}
