package exec

import (
	"errors"
	"strings"
	"testing"

	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/utxo"
)

// setsEqual compares two UTXO sets exactly.
func setsEqual(a, b *utxo.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	equal := true
	a.Range(func(op utxo.Outpoint, out utxo.TxOut) bool {
		got, ok := b.Get(op)
		if !ok || got.Value != out.Value {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// TestGroupedUTXOMatchesSequential: on generated Bitcoin-like blocks, the
// parallel validator's final set must equal the sequential ApplyBlock's,
// and its unit speed-up must respect the eq. (2) bound.
func TestGroupedUTXOMatchesSequential(t *testing.T) {
	g, err := chainsim.NewUTXOGen(chainsim.BitcoinProfile(), 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Use the generator's own chain as the sequential reference: snapshot
	// before each block, replay in parallel on the snapshot.
	const subsidy = 1 << 50 // the generator's premine option
	for {
		pre := g.Chain().UTXOSet().Clone()
		blk, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		engine := GroupedUTXO{Workers: 8, Subsidy: subsidy, VerifyScripts: false}
		res, err := engine.Execute(pre, blk)
		if err != nil {
			t.Fatalf("block %d: %v", blk.Height, err)
		}
		if !setsEqual(pre, g.Chain().UTXOSet()) {
			t.Fatalf("block %d: parallel set differs from sequential", blk.Height)
		}
		// Speed-up bound: min(n, x/LCC).
		m := core.MeasureUTXOBlock(blk)
		if m.NumTxs == 0 {
			continue
		}
		bound := float64(res.Stats.Workers)
		if lccBound := float64(m.NumTxs) / float64(m.LCC); lccBound < bound {
			bound = lccBound
		}
		if res.Stats.Speedup > bound+1e-9 {
			t.Fatalf("block %d: speed-up %v exceeds bound %v", blk.Height, res.Stats.Speedup, bound)
		}
		// Bitcoin-like blocks have ~1% group rate: with hundreds of txs the
		// speed-up should be close to the worker count.
		if m.NumTxs > 500 && res.Stats.Speedup < 6 {
			t.Fatalf("block %d (%d txs): speed-up %v too low for a near-conflict-free block",
				blk.Height, m.NumTxs, res.Stats.Speedup)
		}
	}
}

func TestGroupedUTXOWithScripts(t *testing.T) {
	g, err := chainsim.NewUTXOGen(chainsim.LitecoinProfile(), 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	for {
		pre := g.Chain().UTXOSet().Clone()
		blk, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		engine := GroupedUTXO{Workers: 4, Subsidy: 1 << 50, VerifyScripts: true}
		if _, err := engine.Execute(pre, blk); err != nil {
			t.Fatalf("block %d with scripts: %v", blk.Height, err)
		}
		if !setsEqual(pre, g.Chain().UTXOSet()) {
			t.Fatalf("block %d: set mismatch", blk.Height)
		}
	}
}

// utxoFixture builds a tiny spendable world for hand-crafted blocks.
func utxoFixture(t *testing.T) (*utxo.Set, *utxo.Transaction) {
	t.Helper()
	set := utxo.NewSet()
	funding := utxo.NewTransaction(nil, []utxo.TxOut{
		{Value: 100}, {Value: 200}, {Value: 300},
	})
	created := map[utxo.Outpoint]utxo.TxOut{}
	for k := range funding.Outputs {
		created[funding.Outpoint(k)] = funding.Outputs[k]
	}
	if err := set.ApplyDelta(nil, created); err != nil {
		t.Fatal(err)
	}
	return set, funding
}

func TestGroupedUTXOCrossComponentDoubleSpend(t *testing.T) {
	set, funding := utxoFixture(t)
	// Two independent-looking transactions spend the same funding output:
	// no TDG edge between them, so only the merge check can catch it.
	t1 := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: funding.Outpoint(0)}},
		[]utxo.TxOut{{Value: 90}},
	)
	t2 := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: funding.Outpoint(0)}},
		[]utxo.TxOut{{Value: 80}},
	)
	cb := utxo.NewTransaction(nil, []utxo.TxOut{{Value: 50}})
	blk := &utxo.Block{Height: 1, Txs: []*utxo.Transaction{cb, t1, t2}}
	engine := GroupedUTXO{Workers: 4, Subsidy: 100}
	_, err := engine.Execute(set, blk)
	if !errors.Is(err, utxo.ErrDuplicateSpend) {
		t.Fatalf("err = %v, want ErrDuplicateSpend", err)
	}
	if set.Len() != 3 {
		t.Fatal("failed validation mutated the set")
	}
}

func TestGroupedUTXOCoinbaseRules(t *testing.T) {
	set, funding := utxoFixture(t)
	// Coinbase overspends subsidy + fees.
	t1 := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: funding.Outpoint(0)}},
		[]utxo.TxOut{{Value: 95}}, // fee 5
	)
	fatCb := utxo.NewTransaction(nil, []utxo.TxOut{{Value: 100}})
	blk := &utxo.Block{Height: 1, Txs: []*utxo.Transaction{fatCb, t1}}
	engine := GroupedUTXO{Workers: 2, Subsidy: 50}
	if _, err := engine.Execute(set, blk); !errors.Is(err, utxo.ErrBadCoinbase) {
		t.Fatalf("overspend: err = %v, want ErrBadCoinbase", err)
	}
	// Exactly subsidy + fees is accepted.
	okCb := utxo.NewTransaction(nil, []utxo.TxOut{{Value: 55}})
	blk = &utxo.Block{Height: 1, Txs: []*utxo.Transaction{okCb, t1}}
	if _, err := engine.Execute(set, blk); err != nil {
		t.Fatalf("exact coinbase: %v", err)
	}
}

func TestGroupedUTXOSpendOwnCoinbase(t *testing.T) {
	set, _ := utxoFixture(t)
	cb := utxo.NewTransaction(nil, []utxo.TxOut{{Value: 50}})
	spend := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: cb.Outpoint(0)}},
		[]utxo.TxOut{{Value: 50}},
	)
	blk := &utxo.Block{Height: 1, Txs: []*utxo.Transaction{cb, spend}}
	engine := GroupedUTXO{Workers: 2, Subsidy: 50}
	if _, err := engine.Execute(set, blk); err != nil {
		t.Fatalf("in-block coinbase spend: %v", err)
	}
	if set.Contains(cb.Outpoint(0)) {
		t.Fatal("spent coinbase output in set")
	}
	if !set.Contains(spend.Outpoint(0)) {
		t.Fatal("spender's output missing")
	}
}

func TestGroupedUTXOErrors(t *testing.T) {
	set, funding := utxoFixture(t)
	cb := utxo.NewTransaction(nil, []utxo.TxOut{{Value: 50}})
	if _, err := (GroupedUTXO{Subsidy: 50}).Execute(set, &utxo.Block{Txs: []*utxo.Transaction{cb}}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("no workers: %v", err)
	}
	// Missing coinbase.
	t1 := utxo.NewTransaction([]utxo.TxIn{{Prev: funding.Outpoint(0)}}, []utxo.TxOut{{Value: 1}})
	if _, err := (GroupedUTXO{Workers: 2, Subsidy: 50}).Execute(set, &utxo.Block{Txs: []*utxo.Transaction{t1}}); err == nil {
		t.Fatal("missing coinbase accepted")
	}
	// Unknown input.
	bogus := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: utxo.Outpoint{Index: 77}}},
		[]utxo.TxOut{{Value: 1}},
	)
	blk := &utxo.Block{Height: 1, Txs: []*utxo.Transaction{cb, bogus}}
	if _, err := (GroupedUTXO{Workers: 2, Subsidy: 50}).Execute(set, blk); !errors.Is(err, ErrParallelValidation) {
		t.Fatalf("unknown input: %v", err)
	}
	// Value inflation.
	inflate := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: funding.Outpoint(1)}},
		[]utxo.TxOut{{Value: 500}},
	)
	blk = &utxo.Block{Height: 1, Txs: []*utxo.Transaction{cb, inflate}}
	if _, err := (GroupedUTXO{Workers: 2, Subsidy: 50}).Execute(set, blk); !errors.Is(err, ErrParallelValidation) {
		t.Fatalf("inflation: %v", err)
	}
}

// TestGroupedUTXODeterministicRejection pins the canonical-order merge:
// when a block is rejected for cross-component double spends, every run —
// and therefore every replica replaying the same invalid block — must name
// the same outpoint, the canonically smallest by (TxID, Index), regardless
// of Go's randomized map iteration.
func TestGroupedUTXODeterministicRejection(t *testing.T) {
	set, funding := utxoFixture(t)
	// Two single-tx components both spend funding outputs 0 and 1: no TDG
	// edge connects them, so both duplicates surface only at merge time,
	// and each worker's baseSpent map holds both outpoints.
	tA := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: funding.Outpoint(1)}, {Prev: funding.Outpoint(0)}},
		[]utxo.TxOut{{Value: 250}},
	)
	tB := utxo.NewTransaction(
		[]utxo.TxIn{{Prev: funding.Outpoint(0)}, {Prev: funding.Outpoint(1)}},
		[]utxo.TxOut{{Value: 240}},
	)
	cb := utxo.NewTransaction(nil, []utxo.TxOut{{Value: 10}})
	blk := &utxo.Block{Height: 1, Txs: []*utxo.Transaction{cb, tA, tB}}
	engine := GroupedUTXO{Workers: 2, Subsidy: 100}
	want := ""
	for i := 0; i < 100; i++ {
		_, err := engine.Execute(set.Clone(), blk)
		if !errors.Is(err, utxo.ErrDuplicateSpend) {
			t.Fatalf("run %d: err = %v, want ErrDuplicateSpend", i, err)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("run %d: rejection %q differs from first run's %q", i, err.Error(), want)
		}
	}
	if smallest := funding.Outpoint(0).String(); !strings.Contains(want, smallest) {
		t.Fatalf("rejection %q does not name the canonically smallest duplicate %s", want, smallest)
	}
}
