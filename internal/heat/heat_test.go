package heat

import (
	"testing"
	"testing/quick"

	"txconcur/internal/core"
	"txconcur/internal/types"
)

func addr(i uint64) types.Address { return types.AddressFromUint64("heat/test", i) }

// obs builds a BlockHeat where every listed group is both accessed and
// conflicted — the shape a block of serialised transactions produces.
func obs(groups ...[]types.Address) core.BlockHeat {
	h := core.BlockHeat{
		Access:   make(map[types.Address]int),
		Conflict: make(map[types.Address]int),
	}
	for _, g := range groups {
		for _, a := range g {
			h.Access[a]++
			h.Conflict[a]++
		}
		h.Groups = append(h.Groups, g)
	}
	return h
}

func TestTrackerDecay(t *testing.T) {
	tr := NewTracker(0.5)
	a := addr(1)
	tr.ObserveBlock(obs([]types.Address{a, addr(2)}))
	if got := tr.ConflictHeat(a); got != 1 {
		t.Fatalf("heat after one observation = %v, want 1", got)
	}
	// Two empty blocks: heat halves twice.
	tr.ObserveBlock(core.BlockHeat{})
	tr.ObserveBlock(core.BlockHeat{})
	if got := tr.ConflictHeat(a); got != 0.25 {
		t.Fatalf("decayed heat = %v, want 0.25", got)
	}
	// Enough empty blocks prune the entry entirely.
	for i := 0; i < 10; i++ {
		tr.ObserveBlock(core.BlockHeat{})
	}
	if tr.AccessHeat(a) != 0 || tr.Tracked() != 0 {
		t.Fatalf("stale entries survived pruning: heat=%v tracked=%d", tr.AccessHeat(a), tr.Tracked())
	}
}

func TestTrackerHottestOrdering(t *testing.T) {
	tr := NewTracker(1)
	hotA, hotB, warm := addr(1), addr(2), addr(3)
	for i := 0; i < 3; i++ {
		tr.ObserveBlock(obs([]types.Address{hotA, hotB}))
	}
	tr.ObserveBlock(obs([]types.Address{warm, addr(4)}))
	got := tr.Hottest(2)
	if len(got) != 2 {
		t.Fatalf("Hottest(2) returned %d entries", len(got))
	}
	// hotA and hotB tie on heat and outrank warm; the address tie-break
	// keeps the ranking total.
	if (got[0].Addr != hotA && got[0].Addr != hotB) ||
		(got[1].Addr != hotA && got[1].Addr != hotB) || got[0].Addr == got[1].Addr {
		t.Fatalf("ranking = %v, %v; want the two hot addresses", got[0].Addr, got[1].Addr)
	}
	if got[0].Conflict != 3 {
		t.Fatalf("undecayed heat = %v, want 3", got[0].Conflict)
	}
}

func TestTrackerClusters(t *testing.T) {
	tr := NewTracker(1)
	botA, colA := addr(10), addr(11)
	botB, colB := addr(20), addr(21)
	lone := addr(30)
	for i := 0; i < 4; i++ {
		tr.ObserveBlock(obs(
			[]types.Address{botA, colA},
			[]types.Address{botA, colA},
			[]types.Address{botB, colB},
			[]types.Address{lone, addr(31 + uint64(i))}, // different partner every block
		))
	}
	all := []types.Address{botA, colA, botB, colB, lone}
	clusters := tr.Clusters(all, 2.5)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %v, want {botA,colA} {botB,colB} {lone}", clusters)
	}
	asSet := func(c []types.Address) map[types.Address]bool {
		s := make(map[types.Address]bool, len(c))
		for _, a := range c {
			s[a] = true
		}
		return s
	}
	// The A pair conflicts twice per block, so it ranks first.
	if s := asSet(clusters[0]); len(s) != 2 || !s[botA] || !s[colA] {
		t.Fatalf("hottest cluster = %v, want {botA, colA}", clusters[0])
	}
	if s := asSet(clusters[1]); len(s) != 2 || !s[botB] || !s[colB] {
		t.Fatalf("second cluster = %v, want {botB, colB}", clusters[1])
	}
	if len(clusters[2]) != 1 || clusters[2][0] != lone {
		t.Fatalf("lone address clustered: %v", clusters[2])
	}
}

func TestAdaptiveMapCoLocatesPairs(t *testing.T) {
	m := NewAdaptiveMap(4, NewTracker(1))
	botA, colA := addr(100), addr(101)
	botB, colB := addr(200), addr(201)
	for i := 0; i < 5; i++ {
		m.ObserveBlock(obs(
			[]types.Address{botA, colA},
			[]types.Address{botA, colA},
			[]types.Address{botB, colB},
			[]types.Address{botB, colB},
		))
	}
	moves := m.Rebalance()
	if m.Shard(botA) != m.Shard(colA) {
		t.Fatalf("pair A not co-located: %d vs %d", m.Shard(botA), m.Shard(colA))
	}
	if m.Shard(botB) != m.Shard(colB) {
		t.Fatalf("pair B not co-located: %d vs %d", m.Shard(botB), m.Shard(colB))
	}
	if m.Shard(botA) == m.Shard(botB) {
		t.Fatalf("both pairs packed onto shard %d despite empty shards", m.Shard(botA))
	}
	for _, mv := range moves {
		if mv.From == mv.To {
			t.Fatalf("no-op move reported: %+v", mv)
		}
		if mv.From != core.ShardOf(mv.Addr, 4) {
			t.Fatalf("move %v does not start from the address's previous home", mv)
		}
	}

	// A second rebalance on the same profile must be sticky: the pairs are
	// placed, nothing should move again.
	if again := m.Rebalance(); len(again) != 0 {
		t.Fatalf("stationary profile migrated again: %v", again)
	}
	if m.Epochs() != 2 {
		t.Fatalf("epochs = %d, want 2", m.Epochs())
	}
}

func TestAdaptiveMapSingletonsStay(t *testing.T) {
	m := NewAdaptiveMap(4, NewTracker(1))
	hot := addr(7)
	// Very hot, but with a different partner every block: no persistent
	// affinity, so no cluster, so no move.
	for i := 0; i < 6; i++ {
		m.ObserveBlock(obs([]types.Address{hot, addr(1000 + uint64(i))}))
	}
	if moves := m.Rebalance(); len(moves) != 0 {
		t.Fatalf("singleton moved: %v", moves)
	}
	if m.Shard(hot) != core.ShardOf(hot, 4) {
		t.Fatal("singleton left its hash default")
	}
}

func TestAdaptiveMapConflictHot(t *testing.T) {
	m := NewAdaptiveMap(2, NewTracker(1))
	a, b := addr(1), addr(2)
	m.ObserveBlock(obs([]types.Address{a, b}))
	if m.ConflictHot(a) {
		t.Fatal("one serialisation already counts as hot")
	}
	m.ObserveBlock(obs([]types.Address{a, b}))
	if !m.ConflictHot(a) {
		t.Fatal("repeatedly serialised address not hot")
	}
	if m.ConflictHot(addr(99)) {
		t.Fatal("cold address reported hot")
	}
}

func TestAdaptiveMapSingleShardInert(t *testing.T) {
	m := NewAdaptiveMap(1, nil)
	m.ObserveBlock(obs([]types.Address{addr(1), addr(2)}))
	if moves := m.Rebalance(); len(moves) != 0 {
		t.Fatalf("single-shard map moved: %v", moves)
	}
	if m.Shard(addr(1)) != 0 {
		t.Fatal("single shard must map everything to 0")
	}
}

// TestAdaptiveMapDeterministic: identical observation sequences produce
// identical assignments — the property the engine's reproducible schedule
// accounting rests on.
func TestAdaptiveMapDeterministic(t *testing.T) {
	build := func() *AdaptiveMap {
		m := NewAdaptiveMap(8, NewTracker(0.8))
		for i := 0; i < 12; i++ {
			m.ObserveBlock(obs(
				[]types.Address{addr(uint64(i % 3)), addr(100 + uint64(i%3))},
				[]types.Address{addr(50), addr(51)},
			))
			if i%4 == 3 {
				m.Rebalance()
			}
		}
		return m
	}
	a, b := build(), build()
	for i := uint64(0); i < 200; i++ {
		if a.Shard(addr(i)) != b.Shard(addr(i)) {
			t.Fatalf("assignment of %v differs across identical runs", addr(i))
		}
	}
	if a.Moved() != b.Moved() || a.Epochs() != b.Epochs() {
		t.Fatalf("counters differ: %d/%d vs %d/%d", a.Moved(), a.Epochs(), b.Moved(), b.Epochs())
	}
}

// TestShardInRange: whatever is observed, assignments stay in range — a
// quick-check over arbitrary observation streams.
func TestShardInRange(t *testing.T) {
	f := func(seeds []uint64, shards uint8) bool {
		n := 1 + int(shards)%8
		m := NewAdaptiveMap(n, nil)
		for i, s := range seeds {
			m.ObserveBlock(obs([]types.Address{addr(s % 32), addr((s >> 8) % 32)}))
			if i%3 == 2 {
				m.Rebalance()
			}
		}
		for i := uint64(0); i < 64; i++ {
			if sh := m.Shard(addr(i)); sh < 0 || sh >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
