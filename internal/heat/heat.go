// Package heat tracks per-address access and conflict heat across executed
// blocks and turns it into a load-aware shard assignment.
//
// The sharded execution engine (internal/exec.Sharded) partitions state by
// a core.ShardMap; its baseline is static FNV-1a hashing, which balances a
// uniform address space but has no answer to workload skew — a sweep bot
// hammering one collector address keeps paying the cross-shard merge on
// every block, forever, because nothing ever moves. Conflict structure in
// real workloads is learnable (the Conflux measurements of Garamvölgyi et
// al. show most contention is application-inherent and persistent across
// blocks; Lin et al.'s operation-level analysis shows the same for hot
// balances), so this package learns it:
//
//   - Tracker folds each committed block's core.BlockHeat into per-address
//     access and conflict scores with exponential decay, and keeps an
//     affinity graph between addresses that were serialised *together* —
//     the co-conflict signal a placement policy clusters on.
//   - AdaptiveMap implements core.AdaptiveShardMap on top of a Tracker: at
//     each epoch boundary it clusters the hot addresses by affinity,
//     packs the clusters onto the least-loaded shards (stickily, so a
//     stationary workload stops migrating once placed), and exposes the
//     conflict-hot set the engine uses to order its merge waves.
//
// Everything in this package is deterministic: map iteration never feeds
// an order-sensitive computation — address sets are sorted before any
// accumulation or argmin — so two runs over the same chain produce the
// same assignments, the same migrations, and therefore the same schedule
// accounting. Decay happens per observed block, making the profile a
// function of the block sequence alone.
package heat

import (
	"sort"

	"txconcur/internal/core"
	"txconcur/internal/types"
)

// Default tuning knobs. They are deliberately coarse: the tracker feeds a
// placement decision per epoch, not a per-transaction predictor.
const (
	// DefaultDecay is the per-block retention factor of the exponential
	// decay: a score loses ~90% of its weight in ~10 blocks, so a drifting
	// hotspot stops dominating the profile about one epoch after it moves.
	DefaultDecay = 0.8
	// DefaultConflictFloor is the decayed conflict score above which an
	// address counts as conflict-hot (ConflictHot): roughly "serialised at
	// least twice in the recent past".
	DefaultConflictFloor = 1.5
	// DefaultMinEdge is the decayed co-conflict weight below which two
	// addresses do not cluster. One-off contact — a random depositor
	// brushing a hot wallet once — peaks near 1 and decays immediately;
	// a persistent pair (a sweep bot and its collector) accumulates far
	// above it. Clustering only persistent pairs is what keeps a
	// hot-receiver workload, whose senders are different every block, from
	// dragging a crowd of cold senders through migration after migration.
	DefaultMinEdge = 2.5
	// pruneEps drops decayed entries below this weight so the tracked set
	// stays proportional to the recent working set, not to history.
	pruneEps = 0.05
	// maxGroupSize caps the affinity fan-out of one serialised transaction:
	// a transaction touching more addresses than this (a deep contract
	// cascade) contributes its addresses' scalar heat but no pairwise
	// edges, keeping the edge set quadratic only in small groups.
	maxGroupSize = 8
)

// Tracker accumulates exponentially decayed per-address heat from executed
// blocks. The zero value is not usable; call NewTracker. Not safe for
// concurrent use — the engine feeds it from its (sequential) committer.
type Tracker struct {
	decay    float64
	access   map[types.Address]float64
	conflict map[types.Address]float64
	// edges holds the decayed co-conflict weight between address pairs,
	// keyed with the smaller address first.
	edges  map[edgeKey]float64
	blocks int
}

type edgeKey struct{ a, b types.Address }

func edgeOf(a, b types.Address) edgeKey {
	if b.Less(a) {
		a, b = b, a
	}
	return edgeKey{a: a, b: b}
}

// NewTracker returns a tracker with the given per-block decay factor;
// values outside (0, 1] fall back to DefaultDecay.
func NewTracker(decay float64) *Tracker {
	if decay <= 0 || decay > 1 {
		decay = DefaultDecay
	}
	return &Tracker{
		decay:    decay,
		access:   make(map[types.Address]float64),
		conflict: make(map[types.Address]float64),
		edges:    make(map[edgeKey]float64),
	}
}

// Blocks returns how many blocks have been observed.
func (t *Tracker) Blocks() int { return t.blocks }

// Tracked returns how many addresses currently hold non-negligible heat.
func (t *Tracker) Tracked() int { return len(t.access) }

// AccessHeat returns the decayed access score of a (0 when untracked).
func (t *Tracker) AccessHeat(a types.Address) float64 { return t.access[a] }

// ConflictHeat returns the decayed conflict score of a (0 when untracked).
func (t *Tracker) ConflictHeat(a types.Address) float64 { return t.conflict[a] }

// ObserveBlock decays every tracked score by one block and folds in the
// block's access counts, conflict counts, and co-conflict groups.
func (t *Tracker) ObserveBlock(h core.BlockHeat) {
	t.blocks++
	decayMap(t.access, t.decay)
	decayMap(t.conflict, t.decay)
	for k, w := range t.edges {
		if w *= t.decay; w < pruneEps {
			delete(t.edges, k)
		} else {
			t.edges[k] = w
		}
	}
	for a, n := range h.Access {
		t.access[a] += float64(n)
	}
	for a, n := range h.Conflict {
		t.conflict[a] += float64(n)
	}
	for _, g := range h.Groups {
		if len(g) < 2 || len(g) > maxGroupSize {
			continue
		}
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				t.edges[edgeOf(g[i], g[j])]++
			}
		}
	}
}

func decayMap(m map[types.Address]float64, decay float64) {
	for a, w := range m {
		if w *= decay; w < pruneEps {
			delete(m, a)
		} else {
			m[a] = w
		}
	}
}

// AddressHeat is one entry of a Hottest ranking.
type AddressHeat struct {
	Addr types.Address
	// Access and Conflict are the decayed scores; Hottest ranks by
	// Conflict first (placement exists to dissolve conflicts), Access
	// second, address bytes last, so the ranking is total and
	// deterministic.
	Access, Conflict float64
}

// Hottest returns up to k addresses ranked hottest-first. Addresses with
// zero conflict heat are included only if fewer than k conflicted ones
// exist, ranked by access heat.
func (t *Tracker) Hottest(k int) []AddressHeat {
	if k <= 0 {
		return nil
	}
	all := make([]AddressHeat, 0, len(t.access)+len(t.conflict))
	seen := make(map[types.Address]bool, len(t.access))
	for a := range t.access {
		seen[a] = true
		all = append(all, AddressHeat{Addr: a, Access: t.access[a], Conflict: t.conflict[a]})
	}
	for a := range t.conflict {
		if !seen[a] {
			all = append(all, AddressHeat{Addr: a, Access: t.access[a], Conflict: t.conflict[a]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Conflict != all[j].Conflict {
			return all[i].Conflict > all[j].Conflict
		}
		if all[i].Access != all[j].Access {
			return all[i].Access > all[j].Access
		}
		return all[i].Addr.Less(all[j].Addr)
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Clusters partitions the given addresses into affinity components: two
// addresses belong to the same cluster when a chain of co-conflict edges
// (each of decayed weight ≥ minEdge) connects them within the set.
// Clusters are returned hottest-first (by summed conflict then access
// heat, ties by smallest member), each cluster's members sorted — the
// deterministic input a placement pass packs onto shards.
func (t *Tracker) Clusters(addrs []types.Address, minEdge float64) [][]types.Address {
	idx := make(map[types.Address]int, len(addrs))
	sorted := append([]types.Address(nil), addrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for i, a := range sorted {
		idx[a] = i
	}
	parent := make([]int, len(sorted))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(i, j int) {
		ri, rj := find(i), find(j)
		if ri != rj {
			if rj < ri {
				ri, rj = rj, ri
			}
			parent[rj] = ri
		}
	}
	//txlint:ordered union-by-minimum-index makes component roots canonical, so the partition is independent of edge visit order
	for k, w := range t.edges {
		if w < minEdge {
			continue
		}
		i, iok := idx[k.a]
		j, jok := idx[k.b]
		if iok && jok {
			union(i, j)
		}
	}
	byRoot := make(map[int][]types.Address)
	for i, a := range sorted {
		r := find(i)
		byRoot[r] = append(byRoot[r], a)
	}
	clusters := make([][]types.Address, 0, len(byRoot))
	for _, members := range byRoot {
		// members are already in address order (sorted slice order).
		clusters = append(clusters, members)
	}
	heatOf := func(c []types.Address) (conflict, access float64) {
		for _, a := range c {
			conflict += t.conflict[a]
			access += t.access[a]
		}
		return
	}
	sort.Slice(clusters, func(i, j int) bool {
		ci, ai := heatOf(clusters[i])
		cj, aj := heatOf(clusters[j])
		if ci != cj {
			return ci > cj
		}
		if ai != aj {
			return ai > aj
		}
		return clusters[i][0].Less(clusters[j][0])
	})
	return clusters
}
