package heat

import (
	"sort"

	"txconcur/internal/core"
	"txconcur/internal/types"
)

// AdaptiveMap is a load-aware core.ShardMap driven by a Tracker: hot
// addresses are reassigned away from their FNV-1a default at epoch
// boundaries, everything else falls through to core.ShardOf. It implements
// core.AdaptiveShardMap, so exec.Sharded.ExecuteChain feeds it every
// committed block and triggers Rebalance (plus the state migration of the
// moved addresses) every RebalanceEvery blocks.
//
// The placement policy is conflict-community packing:
//
//  1. Take the TopK hottest addresses whose decayed conflict heat reaches
//     MinHeat — the only addresses worth moving; the cold tail stays
//     hash-balanced.
//  2. Cluster them by co-conflict affinity (Tracker.Clusters): addresses
//     that keep getting serialised together — a sweep bot and the
//     collector it pays, a contract and its callers — must land on the
//     same shard, or every one of their transactions is cross-shard.
//  3. Pack clusters hottest-first onto the least-loaded shard, where load
//     is the decayed access heat already assigned to the shard (cold
//     addresses count toward their FNV shard). Packing is sticky: a
//     cluster keeps its current shard unless the least-loaded shard is
//     lighter by more than StickyFactor, so a stationary workload stops
//     migrating once placed.
//
// Not safe for concurrent mutation; the engine rebalances only at drained
// epoch boundaries, which is the contract core.AdaptiveShardMap states.
type AdaptiveMap struct {
	shards  int
	tracker *Tracker

	// TopK bounds how many hot addresses a rebalance considers; 0 means 64.
	TopK int
	// MinHeat is the conflict-heat floor for reassignment; 0 means
	// DefaultConflictFloor.
	MinHeat float64
	// MinEdge is the affinity-edge floor for clustering; 0 means
	// DefaultMinEdge.
	MinEdge float64
	// StickyFactor is the relative load advantage (e.g. 0.15 = 15%)
	// another shard must offer before a placed cluster moves again; 0
	// means 0.15.
	StickyFactor float64

	overrides map[types.Address]int
	epochs    int
	moved     int
}

var _ core.AdaptiveShardMap = (*AdaptiveMap)(nil)

// NewAdaptiveMap returns an adaptive map over n shards backed by t; a nil
// t gets a fresh Tracker with DefaultDecay.
func NewAdaptiveMap(n int, t *Tracker) *AdaptiveMap {
	if n < 1 {
		n = 1
	}
	if t == nil {
		t = NewTracker(DefaultDecay)
	}
	return &AdaptiveMap{shards: n, tracker: t, overrides: make(map[types.Address]int)}
}

// Tracker exposes the underlying heat profile.
func (m *AdaptiveMap) Tracker() *Tracker { return m.tracker }

// Shards implements core.ShardMap.
func (m *AdaptiveMap) Shards() int { return m.shards }

// Shard implements core.ShardMap.
func (m *AdaptiveMap) Shard(a types.Address) int {
	if s, ok := m.overrides[a]; ok {
		return s
	}
	return core.ShardOf(a, m.shards)
}

// Overrides returns the current reassignments (copy).
func (m *AdaptiveMap) Overrides() map[types.Address]int {
	out := make(map[types.Address]int, len(m.overrides))
	for a, s := range m.overrides {
		out[a] = s
	}
	return out
}

// Epochs returns how many rebalances have run; Moved sums the addresses
// they reassigned.
func (m *AdaptiveMap) Epochs() int { return m.epochs }

// Moved returns the cumulative number of address reassignments.
func (m *AdaptiveMap) Moved() int { return m.moved }

// ObserveBlock implements core.AdaptiveShardMap.
func (m *AdaptiveMap) ObserveBlock(h core.BlockHeat) { m.tracker.ObserveBlock(h) }

// ConflictHot reports whether a's decayed conflict heat reaches the
// reassignment floor — the signal the engine's merge uses to give
// predicted-conflicting transactions their own (earlier) re-execution
// wave instead of betting on a stale phase-1 prediction.
func (m *AdaptiveMap) ConflictHot(a types.Address) bool {
	return m.tracker.ConflictHeat(a) >= m.minHeat()
}

func (m *AdaptiveMap) topK() int {
	if m.TopK > 0 {
		return m.TopK
	}
	return 64
}

func (m *AdaptiveMap) minHeat() float64 {
	if m.MinHeat > 0 {
		return m.MinHeat
	}
	return DefaultConflictFloor
}

func (m *AdaptiveMap) minEdge() float64 {
	if m.MinEdge > 0 {
		return m.MinEdge
	}
	return DefaultMinEdge
}

func (m *AdaptiveMap) sticky() float64 {
	if m.StickyFactor > 0 {
		return m.StickyFactor
	}
	return 0.15
}

// Rebalance implements core.AdaptiveShardMap. It recomputes the override
// table from the tracker's current profile and returns the resulting
// moves, sorted by address. Deterministic: every accumulation and argmin
// iterates addresses in sorted order.
func (m *AdaptiveMap) Rebalance() []core.ShardMove {
	m.epochs++
	if m.shards == 1 {
		return nil
	}

	// The hot set: conflict heat above the floor, hottest first.
	ranked := m.tracker.Hottest(m.topK())
	hot := make([]types.Address, 0, len(ranked))
	for _, h := range ranked {
		if h.Conflict >= m.minHeat() {
			hot = append(hot, h.Addr)
		}
	}

	// Shard loads from the cold remainder: every tracked address that is
	// not being re-placed contributes its access heat to the shard the
	// *new* table will assign it to — its FNV default, since overrides are
	// recomputed from scratch and only ever cover the hot set.
	hotSet := make(map[types.Address]bool, len(hot))
	for _, a := range hot {
		hotSet[a] = true
	}
	load := make([]float64, m.shards)
	cold := make([]types.Address, 0, len(m.tracker.access))
	for a := range m.tracker.access {
		if !hotSet[a] {
			cold = append(cold, a)
		}
	}
	sort.Slice(cold, func(i, j int) bool { return cold[i].Less(cold[j]) })
	for _, a := range cold {
		load[core.ShardOf(a, m.shards)] += m.tracker.access[a]
	}

	// Pack affinity clusters hottest-first onto the least-loaded shard,
	// stickily. Singleton clusters are left on their hash default:
	// co-location is the lever that converts cross-shard streams to
	// intra-shard work, and an address with no persistent counterparty has
	// nothing to be co-located with — moving it is migration churn that
	// cannot reduce cross traffic (its peers are spread regardless).
	newOverrides := make(map[types.Address]int, len(hot))
	for _, cluster := range m.tracker.Clusters(hot, m.minEdge()) {
		if len(cluster) < 2 {
			// Still counts toward its (default) shard's load.
			load[core.ShardOf(cluster[0], m.shards)] += m.tracker.access[cluster[0]]
			continue
		}
		var weight float64
		for _, a := range cluster {
			weight += m.tracker.access[a]
		}
		// Current home: where the cluster's first (smallest) member lives
		// under the outgoing table.
		cur := m.Shard(cluster[0])
		best := 0
		for s := 1; s < m.shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		target := best
		if load[cur] <= load[best]*(1+m.sticky())+weight*m.sticky() {
			target = cur
		}
		for _, a := range cluster {
			if target != core.ShardOf(a, m.shards) {
				newOverrides[a] = target
			}
		}
		load[target] += weight
	}

	// Diff old vs new assignment over the union of override keys; any
	// address in neither table is unchanged by construction.
	union := make(map[types.Address]bool, len(m.overrides)+len(newOverrides))
	for a := range m.overrides {
		union[a] = true
	}
	for a := range newOverrides {
		union[a] = true
	}
	addrs := make([]types.Address, 0, len(union))
	for a := range union {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	var moves []core.ShardMove
	assign := func(tab map[types.Address]int, a types.Address) int {
		if s, ok := tab[a]; ok {
			return s
		}
		return core.ShardOf(a, m.shards)
	}
	for _, a := range addrs {
		from, to := assign(m.overrides, a), assign(newOverrides, a)
		if from != to {
			moves = append(moves, core.ShardMove{Addr: a, From: from, To: to})
		}
	}
	m.overrides = newOverrides
	m.moved += len(moves)
	return moves
}
