package heat_test

import (
	"fmt"

	"txconcur/internal/core"
	"txconcur/internal/heat"
	"txconcur/internal/types"
)

// ExampleTracker shows the heat profile a sweep-bot stream produces: the
// bot and its collector keep being serialised together, so their affinity
// edge survives decay while one-off contacts fade out.
func ExampleTracker() {
	bot := types.AddressFromUint64("example/bot", 0)
	collector := types.AddressFromUint64("example/collect", 0)
	passerby := types.AddressFromUint64("example/user", 7)

	tr := heat.NewTracker(0.8)
	for block := 0; block < 5; block++ {
		h := core.BlockHeat{
			Access:   map[types.Address]int{bot: 6, collector: 6, passerby: 1},
			Conflict: map[types.Address]int{bot: 5, collector: 5},
			// Every serialised sweep touches the same pair.
			Groups: [][]types.Address{{bot, collector}},
		}
		if block > 0 {
			h.Conflict = map[types.Address]int{bot: 5, collector: 5, passerby: 0}
		}
		tr.ObserveBlock(h)
	}

	fmt.Printf("blocks observed: %d\n", tr.Blocks())
	fmt.Printf("bot hotter than passerby: %v\n",
		tr.ConflictHeat(bot) > tr.ConflictHeat(passerby))
	clusters := tr.Clusters([]types.Address{bot, collector, passerby}, 2.5)
	fmt.Printf("hottest cluster size: %d\n", len(clusters[0]))
	// Output:
	// blocks observed: 5
	// bot hotter than passerby: true
	// hottest cluster size: 2
}

// ExampleAdaptiveMap shows the full placement loop: observe serialised
// bot/collector pairs, rebalance, and read the co-located assignment. The
// sharded engine drives exactly this loop through core.AdaptiveShardMap.
func ExampleAdaptiveMap() {
	bot := types.AddressFromUint64("example/bot", 1)
	collector := types.AddressFromUint64("example/collect", 1)

	m := heat.NewAdaptiveMap(4, nil)
	fmt.Printf("co-located before: %v\n", m.Shard(bot) == m.Shard(collector))
	for block := 0; block < 5; block++ {
		m.ObserveBlock(core.BlockHeat{
			Access:   map[types.Address]int{bot: 8, collector: 8},
			Conflict: map[types.Address]int{bot: 7, collector: 7},
			Groups:   [][]types.Address{{bot, collector}, {bot, collector}},
		})
	}
	moves := m.Rebalance()
	fmt.Printf("moves: %d\n", len(moves))
	fmt.Printf("co-located after: %v\n", m.Shard(bot) == m.Shard(collector))
	// A stationary workload settles: the next epoch moves nothing.
	fmt.Printf("second rebalance moves: %d\n", len(m.Rebalance()))
	// Output:
	// co-located before: false
	// moves: 1
	// co-located after: true
	// second rebalance moves: 0
}
