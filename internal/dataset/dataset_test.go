package dataset

import (
	"bytes"
	"testing"

	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/types"
)

// TestUTXOQueryMatchesCore is the central cross-validation: the BigQuery-
// style pipeline (export to tables, group by block, process_graph UDF) must
// produce exactly the same per-block metrics as the direct implementation
// in package core, over a generated Bitcoin-like history.
func TestUTXOQueryMatchesCore(t *testing.T) {
	g, err := chainsim.NewUTXOGen(chainsim.BitcoinProfile(), 24, 17)
	if err != nil {
		t.Fatal(err)
	}
	var rows []UTXOTxRow
	want := make(map[uint64]core.Metrics)
	for {
		blk, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows = append(rows, FromUTXOBlock(blk)...)
		want[blk.Height] = core.MeasureUTXOBlock(blk)
	}
	results, err := QueryUTXO(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(want) {
		t.Fatalf("results = %d blocks, want %d", len(results), len(want))
	}
	prev := uint64(0)
	for i, r := range results {
		if i > 0 && r.BlockNumber <= prev {
			t.Fatal("results not ordered by block number")
		}
		prev = r.BlockNumber
		m, ok := want[r.BlockNumber]
		if !ok {
			t.Fatalf("unexpected block %d", r.BlockNumber)
		}
		if r.NumTransactions != m.NumTxs || r.NumConflictTxs != m.Conflicted || r.MaxLCCSize != m.LCC {
			t.Fatalf("block %d: pipeline (%d,%d,%d) != core (%d,%d,%d)",
				r.BlockNumber, r.NumTransactions, r.NumConflictTxs, r.MaxLCCSize,
				m.NumTxs, m.Conflicted, m.LCC)
		}
		if r.NumInputs != m.NumInputs {
			t.Fatalf("block %d: inputs %d != %d", r.BlockNumber, r.NumInputs, m.NumInputs)
		}
	}
}

// TestAccountQueryMatchesCore: same cross-validation for the Ethereum-style
// traces pipeline, including gas totals.
func TestAccountQueryMatchesCore(t *testing.T) {
	g, err := chainsim.NewAcctGen(chainsim.EthereumProfile(), 10, 17)
	if err != nil {
		t.Fatal(err)
	}
	var rows []AccountTxRow
	want := make(map[uint64]core.Metrics)
	for {
		blk, receipts, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows = append(rows, FromAccountBlock(blk, receipts)...)
		want[blk.Height] = core.MeasureAccountBlock(blk, receipts)
	}
	results, err := QueryAccount(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(want) {
		t.Fatalf("results = %d blocks, want %d", len(results), len(want))
	}
	for _, r := range results {
		m := want[r.BlockNumber]
		if r.NumTransactions != m.NumTxs || r.NumConflictTxs != m.Conflicted || r.MaxLCCSize != m.LCC {
			t.Fatalf("block %d: pipeline (%d,%d,%d) != core (%d,%d,%d)",
				r.BlockNumber, r.NumTransactions, r.NumConflictTxs, r.MaxLCCSize,
				m.NumTxs, m.Conflicted, m.LCC)
		}
		if r.NumInternal != m.NumInternal {
			t.Fatalf("block %d: internal %d != %d", r.BlockNumber, r.NumInternal, m.NumInternal)
		}
		if r.GasUsed != m.GasUsed {
			t.Fatalf("block %d: gas %d != %d", r.BlockNumber, r.GasUsed, m.GasUsed)
		}
		if r.ConflictGas != m.ConflictedGas || r.MaxLCCGas != m.LCCGas {
			t.Fatalf("block %d: gas numerators (%d,%d) != (%d,%d)",
				r.BlockNumber, r.ConflictGas, r.MaxLCCGas, m.ConflictedGas, m.LCCGas)
		}
		conv := r.Metrics()
		if conv.SingleRate() != m.SingleRate() || conv.GroupRate() != m.GroupRate() {
			t.Fatalf("block %d: converted rates differ", r.BlockNumber)
		}
		if conv.SingleRateGas() != m.SingleRateGas() || conv.GroupRateGas() != m.GroupRateGas() {
			t.Fatalf("block %d: converted gas rates differ", r.BlockNumber)
		}
	}
}

func TestProcessUTXOGraphDirect(t *testing.T) {
	h := func(i uint64) types.Hash { return types.HashUint64("udf", i) }
	// Three transactions; t1 spends t0's output, t2 spends an external
	// output.
	blockTxs := []types.Hash{h(0), h(1), h(2)}
	txs := []types.Hash{h(1), h(2)}
	spent := []types.Hash{h(0), h(99)}
	numTx, numConflict, maxLCC, err := ProcessUTXOGraph(blockTxs, txs, spent)
	if err != nil {
		t.Fatal(err)
	}
	if numTx != 3 || numConflict != 2 || maxLCC != 2 {
		t.Fatalf("got (%d,%d,%d), want (3,2,2)", numTx, numConflict, maxLCC)
	}
	// Mismatched arrays error.
	if _, _, _, err := ProcessUTXOGraph(blockTxs, txs, spent[:1]); err == nil {
		t.Fatal("mismatched arrays accepted")
	}
	// Empty block.
	numTx, numConflict, maxLCC, err = ProcessUTXOGraph(nil, nil, nil)
	if err != nil || numTx != 0 || numConflict != 0 || maxLCC != 0 {
		t.Fatalf("empty block: (%d,%d,%d), %v", numTx, numConflict, maxLCC, err)
	}
}

func TestProcessAccountGraphFig1b(t *testing.T) {
	// Rebuild the paper's Figure 1b from table rows and check the exact
	// published numbers: 16 transactions, 14 conflicted (87.5%), LCC 9.
	addr := func(tag string, i uint64) types.Address { return types.AddressFromUint64(tag, i) }
	poloniex := addr("x", 1)
	contractA, contractB, elcoin := addr("x", 2), addr("x", 3), addr("x", 4)
	dwarf := addr("x", 5)
	var rows []AccountTxRow
	add := func(from, to types.Address, internal bool) {
		rows = append(rows, AccountTxRow{
			BlockNumber: 1000124,
			Hash:        types.HashUint64("tx", uint64(len(rows))),
			From:        from, To: to, IsInternal: internal,
		})
	}
	add(addr("s", 0), addr("r", 0), false)
	for i := uint64(1); i <= 9; i++ {
		add(addr("s", i), poloniex, false)
	}
	for i := uint64(10); i <= 12; i++ {
		add(addr("s", i), contractA, false)
		add(contractA, contractB, true)
		add(contractB, elcoin, true)
	}
	add(dwarf, addr("r", 13), false)
	add(dwarf, addr("r", 14), false)
	add(addr("s", 15), addr("r", 15), false)

	res := ProcessAccountGraph(rows)
	if res.NumTx != 16 || res.NumConflict != 14 || res.MaxLCC != 9 {
		t.Fatalf("got (%d,%d,%d), want (16,14,9)", res.NumTx, res.NumConflict, res.MaxLCC)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rows := []UTXOTxRow{
		{
			BlockNumber: 7,
			Hash:        types.HashUint64("jl", 1),
			Inputs: []TxInputRow{
				{SpentTransactionHash: types.HashUint64("jl", 2), SpentOutputIndex: 3},
			},
			OutputCount: 2,
		},
		{BlockNumber: 8, Hash: types.HashUint64("jl", 3), IsCoinbase: true},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL[UTXOTxRow](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0].Hash != rows[0].Hash || got[0].Inputs[0].SpentOutputIndex != 3 {
		t.Fatalf("row mismatch: %+v", got[0])
	}
	if !got[1].IsCoinbase {
		t.Fatal("coinbase flag lost")
	}
	// Malformed input errors.
	if _, err := ReadJSONL[UTXOTxRow](bytes.NewBufferString("{bad json")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestAccountRowJSON(t *testing.T) {
	rows := []AccountTxRow{{
		BlockNumber: 5,
		Hash:        types.HashUint64("aj", 1),
		From:        types.AddressFromUint64("aj", 2),
		To:          types.AddressFromUint64("aj", 3),
		GasUsed:     21000,
		IsInternal:  true,
	}}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL[AccountTxRow](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].From != rows[0].From || got[0].GasUsed != 21000 || !got[0].IsInternal {
		t.Fatalf("row mismatch: %+v", got[0])
	}
}
