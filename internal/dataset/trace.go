package dataset

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The rwset trace format (E12). A trace is the declared-conflict view of a
// block sequence: one row per transaction carrying the transaction's
// position (block, index), its sender, its declared read/write set as a
// list of operations over opaque string keys, and a measured execution
// cost. The format is the bridge between captured real-chain data (e.g.
// the ICSE rwset-capture pipeline over Ethereum traces) and the execution
// engines: BuildReplayChain turns a trace into executable account-model
// blocks whose conflict structure is exactly the declared one.
//
// Serialisations: JSON Lines (header object on line 1, one row object per
// subsequent line) and CSV (header record first, ops as trailing
// variadic fields). Both are versioned and validated on read; see
// docs/ARCHITECTURE.md for the full specification.
const (
	// TraceFormatName is the format discriminator carried by every trace
	// header.
	TraceFormatName = "txconcur-rwset"
	// TraceVersion is the current schema version. Readers reject any other
	// version: the format is a exchange boundary with external capture
	// pipelines, so silent best-effort parsing of unknown versions is
	// exactly the failure mode the header exists to prevent.
	TraceVersion = 1
)

// Limits enforced by the trace validator. They are not arbitrary: a replay
// transaction's script contract holds one address-table entry per distinct
// key (the VM encodes the table length in one byte), and values are capped
// so that balance arithmetic over long traces stays far from int64
// overflow.
const (
	// MaxTraceOps bounds the operations of one row.
	MaxTraceOps = 4096
	// MaxTraceKeys bounds the distinct keys of one row (VM address-table
	// limit).
	MaxTraceKeys = 255
	// MaxTraceValue bounds an operation's value.
	MaxTraceValue = 1 << 32
	// MaxTraceCost bounds a row's measured cost.
	MaxTraceCost = 1 << 40
)

// Trace errors, distinguishable with errors.Is. Row-level parse and
// validation failures wrap ErrBadRecord and carry the 1-based line number.
var (
	// ErrTraceFormat reports a missing or unsupported trace header
	// (wrong format name or version skew).
	ErrTraceFormat = errors.New("dataset: unsupported trace format")
)

// OpKind is the kind of one declared state operation.
type OpKind string

// The three operation kinds of the rwset schema.
const (
	// OpRead is a read of the key.
	OpRead OpKind = "r"
	// OpWrite is an absolute write: it conflicts with every other
	// operation on the key.
	OpWrite OpKind = "w"
	// OpDelta is a commutative increment (a blind balance credit): two
	// deltas on one key commute with each other, but conflict with reads
	// and absolute writes of that key.
	OpDelta OpKind = "d"
)

// TraceOp is one declared operation of a transaction row.
type TraceOp struct {
	// Kind is the operation kind ("r", "w", or "d").
	Kind OpKind `json:"op"`
	// Key is the opaque state key (e.g. "tok0/bal/17"). Keys must be
	// non-empty, at most 256 bytes, and contain no ':' or control
	// characters (the CSV op encoding reserves ':').
	Key string `json:"key"`
	// Value is the written value (w), or the increment (d, must be ≥ 1).
	// Reads carry no value.
	Value uint64 `json:"value,omitempty"`
}

// TraceTx is one transaction row of a trace.
type TraceTx struct {
	// Block is the source block number. Rows must be grouped by block in
	// non-decreasing order; replay renumbers blocks contiguously from 0
	// and keeps the originals aside (ReplayChain.BlockNumbers).
	Block uint64 `json:"block"`
	// Index is the transaction's position within its block, contiguous
	// from 0.
	Index int `json:"index"`
	// Sender is the opaque sender identity (e.g. a hex address). Distinct
	// strings are distinct senders.
	Sender string `json:"sender"`
	// Ops is the declared read/write set, in execution order.
	Ops []TraceOp `json:"ops,omitempty"`
	// Cost is the measured execution cost (gas on captured Ethereum
	// data), the schedule weight cost-aware replay charges for this
	// transaction. Zero means "unmeasured"; replay then falls back to the
	// actual gas used.
	Cost uint64 `json:"cost,omitempty"`
}

// TraceHeader is the first line of every trace file.
type TraceHeader struct {
	// Format must be TraceFormatName.
	Format string `json:"format"`
	// Version must be TraceVersion.
	Version int `json:"version"`
	// Source is free-form provenance ("erc20-gen seed=7",
	// "bigquery:crypto_ethereum.traces 2020-01", ...).
	Source string `json:"source,omitempty"`
}

// Trace is a fully loaded rwset trace.
type Trace struct {
	Header TraceHeader
	Txs    []TraceTx
}

func (h TraceHeader) validate() error {
	if h.Format != TraceFormatName {
		return fmt.Errorf("%w: format %q, want %q", ErrTraceFormat, h.Format, TraceFormatName)
	}
	if h.Version != TraceVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrTraceFormat, h.Version, TraceVersion)
	}
	// Source is free-form but must stay single-line and printable so the
	// two encodings agree byte-for-byte (the CSV reader normalises CRLF
	// inside quoted fields, which would silently change it).
	if h.Source != "" {
		if why := badString(h.Source, false); why != "" {
			return fmt.Errorf("%w: source %q: %s", ErrTraceFormat, h.Source, why)
		}
	}
	return nil
}

// badString reports the first reason s is unusable as a key or sender:
// empty, too long, a reserved ':' (keys only), or control characters.
func badString(s string, reserveColon bool) string {
	if s == "" {
		return "empty"
	}
	if len(s) > 256 {
		return "longer than 256 bytes"
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c == 0x7f {
			return fmt.Sprintf("control character 0x%02x", c)
		}
		if reserveColon && c == ':' {
			return "reserved character ':'"
		}
	}
	return ""
}

// validate checks the intra-row rules: sender and key syntax, op kinds and
// value ranges, the per-row op and key limits, duplicate (kind, key)
// pairs, and the delta/write exclusion (a commutative increment and an
// absolute write of one key in one transaction have no defined relative
// order).
func (t *TraceTx) validate() error {
	if reason := badString(t.Sender, false); reason != "" {
		return fmt.Errorf("sender %q: %s", t.Sender, reason)
	}
	if t.Index < 0 {
		return fmt.Errorf("negative index %d", t.Index)
	}
	if t.Cost > MaxTraceCost {
		return fmt.Errorf("cost %d exceeds limit %d", t.Cost, uint64(MaxTraceCost))
	}
	if len(t.Ops) > MaxTraceOps {
		return fmt.Errorf("%d ops exceed limit %d", len(t.Ops), MaxTraceOps)
	}
	seen := make(map[TraceOp]struct{}, len(t.Ops))
	kinds := make(map[string]OpKind, len(t.Ops))
	keys := make(map[string]struct{}, len(t.Ops))
	for i, op := range t.Ops {
		if reason := badString(op.Key, true); reason != "" {
			return fmt.Errorf("op %d key %q: %s", i, op.Key, reason)
		}
		switch op.Kind {
		case OpRead:
			if op.Value != 0 {
				return fmt.Errorf("op %d: read of %q carries value %d", i, op.Key, op.Value)
			}
		case OpWrite:
			if op.Value > MaxTraceValue {
				return fmt.Errorf("op %d: value %d exceeds limit %d", i, op.Value, uint64(MaxTraceValue))
			}
		case OpDelta:
			if op.Value == 0 {
				return fmt.Errorf("op %d: delta on %q needs a value ≥ 1", i, op.Key)
			}
			if op.Value > MaxTraceValue {
				return fmt.Errorf("op %d: value %d exceeds limit %d", i, op.Value, uint64(MaxTraceValue))
			}
		default:
			return fmt.Errorf("op %d: unknown kind %q", i, op.Kind)
		}
		dup := TraceOp{Kind: op.Kind, Key: op.Key}
		if _, ok := seen[dup]; ok {
			return fmt.Errorf("op %d: duplicate %s of key %q", i, op.Kind, op.Key)
		}
		seen[dup] = struct{}{}
		if prev, ok := kinds[op.Key]; ok {
			if (prev == OpDelta && op.Kind == OpWrite) || (prev == OpWrite && op.Kind == OpDelta) {
				return fmt.Errorf("op %d: key %q has both a delta and an absolute write", i, op.Key)
			}
			if prev == OpRead {
				kinds[op.Key] = op.Kind // remember the mutating kind
			}
		} else {
			kinds[op.Key] = op.Kind
		}
		keys[op.Key] = struct{}{}
		if len(keys) > MaxTraceKeys {
			return fmt.Errorf("more than %d distinct keys", MaxTraceKeys)
		}
	}
	return nil
}

// traceOrder enforces the inter-row rules across a stream: block numbers
// non-decreasing (strictly increasing across block boundaries) and
// per-block indices contiguous from 0.
type traceOrder struct {
	started bool
	block   uint64
	index   int
}

func (o *traceOrder) check(t *TraceTx) error {
	switch {
	case !o.started:
		if t.Index != 0 {
			return fmt.Errorf("first row of block %d has index %d, want 0", t.Block, t.Index)
		}
	case t.Block == o.block:
		if t.Index != o.index+1 {
			return fmt.Errorf("block %d: index %d after %d, want %d", t.Block, t.Index, o.index, o.index+1)
		}
	case t.Block < o.block:
		return fmt.Errorf("block %d after block %d: blocks must be non-decreasing", t.Block, o.block)
	default:
		if t.Index != 0 {
			return fmt.Errorf("first row of block %d has index %d, want 0", t.Block, t.Index)
		}
	}
	o.started, o.block, o.index = true, t.Block, t.Index
	return nil
}

// Validate checks the whole trace: header, every row, and row ordering.
func (t *Trace) Validate() error {
	if err := t.Header.validate(); err != nil {
		return err
	}
	var ord traceOrder
	for i := range t.Txs {
		if err := t.Txs[i].validate(); err != nil {
			return fmt.Errorf("%w: row %d: %w", ErrBadRecord, i, err)
		}
		if err := ord.check(&t.Txs[i]); err != nil {
			return fmt.Errorf("%w: row %d: %w", ErrBadRecord, i, err)
		}
	}
	return nil
}

// lineReader yields the trimmed non-blank lines of a stream with their
// 1-based line numbers, tolerating a missing final newline.
type lineReader struct {
	br   *bufio.Reader
	line int
	eof  bool
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{br: bufio.NewReader(r)}
}

// next returns the next non-blank line. It returns io.EOF once the stream
// is exhausted and any other read error verbatim.
func (lr *lineReader) next() ([]byte, int, error) {
	for !lr.eof {
		raw, err := lr.br.ReadBytes('\n')
		if errors.Is(err, io.EOF) {
			lr.eof = true
		} else if err != nil {
			return nil, lr.line + 1, err
		}
		if len(raw) == 0 {
			break
		}
		lr.line++
		if trimmed := bytes.TrimSpace(raw); len(trimmed) > 0 {
			return trimmed, lr.line, nil
		}
	}
	return nil, lr.line, io.EOF
}

// decodeJSONLine unmarshals exactly one JSON value from a line, rejecting
// a bare null (json.Unmarshal would silently leave the target zero —
// the phantom-row bug) and trailing data after the value.
func decodeJSONLine(line []byte, v any) error {
	if bytes.Equal(line, []byte("null")) {
		return errors.New("bare null is not a row")
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after row")
	}
	return nil
}

// TraceReader streams a JSONL trace: the header is read and validated by
// NewTraceReader, rows by successive Next calls. Row errors carry the
// 1-based line number; ordering violations are detected as they stream.
type TraceReader struct {
	// Header is the validated trace header.
	Header TraceHeader

	lr  *lineReader
	ord traceOrder
}

// NewTraceReader reads and validates the header line.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	lr := newLineReader(r)
	line, n, err := lr.next()
	if errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("%w: empty stream, no header", ErrTraceFormat)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, n, err)
	}
	var h TraceHeader
	if err := decodeJSONLine(line, &h); err != nil {
		return nil, fmt.Errorf("%w: header line %d: %w", ErrTraceFormat, n, err)
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return &TraceReader{Header: h, lr: lr}, nil
}

// Next returns the next validated row, or io.EOF at the end of the stream.
func (tr *TraceReader) Next() (*TraceTx, error) {
	line, n, err := tr.lr.next()
	if errors.Is(err, io.EOF) {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, n, err)
	}
	var tx TraceTx
	if err := decodeJSONLine(line, &tx); err != nil {
		return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, n, err)
	}
	if err := tx.validate(); err != nil {
		return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, n, err)
	}
	if err := tr.ord.check(&tx); err != nil {
		return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, n, err)
	}
	return &tx, nil
}

// ReadTrace loads and validates a whole JSONL trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return nil, err
	}
	out := &Trace{Header: tr.Header}
	for {
		tx, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Txs = append(out.Txs, *tx)
	}
}

// WriteTrace writes a trace as JSON Lines, validating as it goes (the
// writer refuses to produce a stream its own reader would reject). A zero
// Header is filled in with the current format name and version.
func WriteTrace(w io.Writer, t *Trace) error {
	h := t.Header
	if h.Format == "" && h.Version == 0 {
		h.Format, h.Version = TraceFormatName, TraceVersion
	}
	if err := h.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("dataset: encode trace header: %w", err)
	}
	var ord traceOrder
	for i := range t.Txs {
		if err := t.Txs[i].validate(); err != nil {
			return fmt.Errorf("%w: row %d: %w", ErrBadRecord, i, err)
		}
		if err := ord.check(&t.Txs[i]); err != nil {
			return fmt.Errorf("%w: row %d: %w", ErrBadRecord, i, err)
		}
		if err := enc.Encode(&t.Txs[i]); err != nil {
			return fmt.Errorf("dataset: encode trace row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// encodeOpCSV renders one op as the "kind:key" / "kind:key:value" CSV
// field.
func encodeOpCSV(op TraceOp) string {
	if op.Value == 0 {
		return string(op.Kind) + ":" + op.Key
	}
	return string(op.Kind) + ":" + op.Key + ":" + strconv.FormatUint(op.Value, 10)
}

func decodeOpCSV(field string) (TraceOp, error) {
	parts := strings.Split(field, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return TraceOp{}, fmt.Errorf("op %q: want kind:key[:value]", field)
	}
	op := TraceOp{Kind: OpKind(parts[0]), Key: parts[1]}
	if len(parts) == 3 {
		v, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return TraceOp{}, fmt.Errorf("op %q: bad value: %w", field, err)
		}
		op.Value = v
	}
	return op, nil
}

// WriteTraceCSV writes a trace as CSV: a header record
// (format, version, source) followed by one record per row —
// block, index, sender, cost, then one field per op ("kind:key[:value]").
func WriteTraceCSV(w io.Writer, t *Trace) error {
	h := t.Header
	if h.Format == "" && h.Version == 0 {
		h.Format, h.Version = TraceFormatName, TraceVersion
	}
	if err := h.validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{h.Format, strconv.Itoa(h.Version), h.Source}); err != nil {
		return fmt.Errorf("dataset: write trace header: %w", err)
	}
	var ord traceOrder
	for i := range t.Txs {
		tx := &t.Txs[i]
		if err := tx.validate(); err != nil {
			return fmt.Errorf("%w: row %d: %w", ErrBadRecord, i, err)
		}
		if err := ord.check(tx); err != nil {
			return fmt.Errorf("%w: row %d: %w", ErrBadRecord, i, err)
		}
		rec := make([]string, 0, 4+len(tx.Ops))
		rec = append(rec,
			strconv.FormatUint(tx.Block, 10),
			strconv.Itoa(tx.Index),
			tx.Sender,
			strconv.FormatUint(tx.Cost, 10))
		for _, op := range tx.Ops {
			rec = append(rec, encodeOpCSV(op))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write trace row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTraceCSV loads and validates a CSV trace.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	hdr, err := cr.Read()
	if errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("%w: empty stream, no header", ErrTraceFormat)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: header: %w", ErrTraceFormat, err)
	}
	if len(hdr) != 3 {
		return nil, fmt.Errorf("%w: header has %d fields, want 3", ErrTraceFormat, len(hdr))
	}
	version, err := strconv.Atoi(hdr[1])
	if err != nil {
		return nil, fmt.Errorf("%w: bad version %q", ErrTraceFormat, hdr[1])
	}
	out := &Trace{Header: TraceHeader{Format: hdr[0], Version: version, Source: hdr[2]}}
	if err := out.Header.validate(); err != nil {
		return nil, err
	}
	var ord traceOrder
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		line := lineOfCSVErr(cr, err)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, line, err)
		}
		if len(rec) < 4 {
			return nil, fmt.Errorf("%w: line %d: %d fields, want at least 4", ErrBadRecord, line, len(rec))
		}
		var tx TraceTx
		if tx.Block, err = strconv.ParseUint(rec[0], 10, 64); err != nil {
			return nil, fmt.Errorf("%w: line %d: bad block %q", ErrBadRecord, line, rec[0])
		}
		if tx.Index, err = strconv.Atoi(rec[1]); err != nil {
			return nil, fmt.Errorf("%w: line %d: bad index %q", ErrBadRecord, line, rec[1])
		}
		tx.Sender = rec[2]
		if tx.Cost, err = strconv.ParseUint(rec[3], 10, 64); err != nil {
			return nil, fmt.Errorf("%w: line %d: bad cost %q", ErrBadRecord, line, rec[3])
		}
		for _, field := range rec[4:] {
			op, err := decodeOpCSV(field)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, line, err)
			}
			tx.Ops = append(tx.Ops, op)
		}
		if err := tx.validate(); err != nil {
			return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, line, err)
		}
		if err := ord.check(&tx); err != nil {
			return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, line, err)
		}
		out.Txs = append(out.Txs, tx)
	}
}

// lineOfCSVErr extracts the 1-based line of the current record: from the
// csv parse error when there is one, from the reader's field position
// after a successful read, 0 when the position is unknowable (I/O error
// mid-record).
func lineOfCSVErr(cr *csv.Reader, err error) int {
	var pe *csv.ParseError
	if errors.As(err, &pe) {
		return pe.Line
	}
	if err != nil {
		return 0
	}
	line, _ := cr.FieldPos(0)
	return line
}
