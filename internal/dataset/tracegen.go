package dataset

import (
	"fmt"
	"math/rand"

	"txconcur/internal/types"
)

// ERC20TraceConfig parameterises the deterministic "ERC20-shaped" trace
// generator: a synthetic rwset trace with the conflict anatomy of real
// token-heavy Ethereum blocks — hot-token transfers contending on a few
// popular holder balances, airdrop batches of commutative credits, DEX
// swaps serialising on shared pool reserves, and low-conflict cold
// payments — so CI and the E12 experiment never need captured chain data.
// The zero value of every field selects a sensible default.
type ERC20TraceConfig struct {
	// Blocks is the number of blocks (default 8).
	Blocks int
	// TxPerBlock is the number of transactions per block (default 40).
	TxPerBlock int
	// Tokens is the number of ERC20-like tokens; token 0 receives ~70% of
	// the token traffic (default 2).
	Tokens int
	// Holders is the number of balance slots per token (default 64).
	Holders int
	// Users is the number of distinct senders (default 32).
	Users int
	// HotPct is the percentage of transfers credited to one of the four
	// "hot" holders — exchanges and routers in real traces (default 60).
	HotPct int
	// AirdropPct, DexPct, and ColdPct are the percentages of rows that
	// are airdrop delta batches, DEX swaps, and cold payments; the
	// remainder are hot-token transfers (defaults 20, 15, 15).
	AirdropPct, DexPct, ColdPct int
	// Seed drives every random choice; equal configs generate equal
	// traces.
	Seed int64
}

func (c ERC20TraceConfig) withDefaults() ERC20TraceConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Blocks, 8)
	def(&c.TxPerBlock, 40)
	def(&c.Tokens, 2)
	def(&c.Holders, 64)
	def(&c.Users, 32)
	def(&c.HotPct, 60)
	def(&c.AirdropPct, 20)
	def(&c.DexPct, 15)
	def(&c.ColdPct, 15)
	return c
}

// GenerateERC20Trace synthesizes a valid rwset trace from the config,
// deterministically in the seed. Costs follow rough Ethereum gas shapes
// per row kind (with seeded jitter), so cost-weighted replay is dominated
// by the swap/airdrop rows exactly as gas-weighted real blocks are.
func GenerateERC20Trace(cfg ERC20TraceConfig) (*Trace, error) {
	c := cfg.withDefaults()
	if c.Blocks < 1 || c.TxPerBlock < 1 || c.Tokens < 1 || c.Holders < 8 || c.Users < 1 {
		return nil, fmt.Errorf("dataset: erc20 generator: bad config %+v", c)
	}
	if c.AirdropPct+c.DexPct+c.ColdPct > 100 {
		return nil, fmt.Errorf("dataset: erc20 generator: row-kind percentages exceed 100")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	out := &Trace{Header: TraceHeader{
		Format:  TraceFormatName,
		Version: TraceVersion,
		Source:  fmt.Sprintf("erc20-gen seed=%d blocks=%d txs=%d", c.Seed, c.Blocks, c.TxPerBlock),
	}}

	token := func() int {
		if c.Tokens == 1 || rng.Intn(100) < 70 {
			return 0
		}
		return 1 + rng.Intn(c.Tokens-1)
	}
	bal := func(t, h int) string { return fmt.Sprintf("tok%d/bal/h%d", t, h) }
	sender := func() string { return fmt.Sprintf("user%02d", rng.Intn(c.Users)) }

	for b := 0; b < c.Blocks; b++ {
		for i := 0; i < c.TxPerBlock; i++ {
			tx := TraceTx{Block: uint64(b), Index: i, Sender: sender()}
			switch roll := rng.Intn(100); {
			case roll < c.AirdropPct:
				// Airdrop: a batch of blind credits — pure commutative
				// deltas, the structure op-level engines exploit.
				t := token()
				k := 4 + rng.Intn(5)
				picked := make(map[int]bool, k)
				for len(picked) < k {
					picked[rng.Intn(c.Holders)] = true
				}
				// Deterministic op order: scan holder ids in order.
				for h := 0; h < c.Holders && len(tx.Ops) < k; h++ {
					if picked[h] {
						tx.Ops = append(tx.Ops, TraceOp{
							Kind: OpDelta, Key: bal(t, h), Value: uint64(1 + rng.Intn(1000)),
						})
					}
				}
				tx.Cost = 21_000 + 8_000*uint64(k) + uint64(rng.Intn(4_000))
			case roll < c.AirdropPct+c.DexPct:
				// DEX swap: read-modify-write of both pool reserves plus
				// the trader's balance — inherent serialisation on the
				// pool.
				t := token()
				trader := rng.Intn(c.Holders)
				r0 := fmt.Sprintf("tok%d/pool/r0", t)
				r1 := fmt.Sprintf("tok%d/pool/r1", t)
				tx.Ops = []TraceOp{
					{Kind: OpRead, Key: r0},
					{Kind: OpWrite, Key: r0, Value: uint64(rng.Intn(1 << 20))},
					{Kind: OpRead, Key: r1},
					{Kind: OpWrite, Key: r1, Value: uint64(rng.Intn(1 << 20))},
					{Kind: OpRead, Key: bal(t, trader)},
					{Kind: OpWrite, Key: bal(t, trader), Value: uint64(rng.Intn(1 << 20))},
				}
				tx.Cost = 60_000 + uint64(rng.Intn(40_000))
			case roll < c.AirdropPct+c.DexPct+c.ColdPct:
				// Cold payment: a credit to an address nobody else
				// touches — the independent tail of real blocks.
				tx.Ops = []TraceOp{{
					Kind:  OpDelta,
					Key:   fmt.Sprintf("cash/c%d", rng.Intn(1_000_000)),
					Value: uint64(1 + rng.Intn(10_000)),
				}}
				tx.Cost = 21_000 + uint64(rng.Intn(2_000))
			default:
				// Hot-token transfer: read-modify-write of two holder
				// balances, receiver skewed toward the four hot holders.
				t := token()
				from := rng.Intn(c.Holders)
				to := rng.Intn(c.Holders)
				if rng.Intn(100) < c.HotPct {
					to = rng.Intn(4)
				}
				v := uint64(1 + rng.Intn(1<<16))
				tx.Ops = []TraceOp{
					{Kind: OpRead, Key: bal(t, from)},
					{Kind: OpWrite, Key: bal(t, from), Value: v},
				}
				if to != from {
					tx.Ops = append(tx.Ops,
						TraceOp{Kind: OpRead, Key: bal(t, to)},
						TraceOp{Kind: OpWrite, Key: bal(t, to), Value: v},
					)
				}
				tx.Cost = 25_000 + uint64(rng.Intn(20_000))
			}
			out.Txs = append(out.Txs, tx)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: erc20 generator produced an invalid trace: %w", err)
	}
	return out, nil
}

// TraceFromAccountRows is the importer for captured account-model data: it
// converts a BigQuery-style traces table (regular transactions plus
// internal-call rows, the schema of crypto_ethereum.traces that cmd/collect
// and the paper's §III pipeline produce) into an rwset trace. The mapping
// is address-level and conservative: every regular transaction reads and
// writes its sender and recipient accounts, and each of its internal calls
// adds a read and write of the callee — so two transactions conflict iff
// they share an address, exactly the paper's TDG edge rule. Commutative
// deltas cannot be inferred at address granularity, so imported traces
// carry none (a richer capture that distinguishes pure credits can emit
// "d" ops directly in the trace format). The measured cost is the
// transaction's gas.
//
// Rows must be grouped by block in non-decreasing order, internal rows
// after their parent transaction (the natural export order).
func TraceFromAccountRows(rows []AccountTxRow) (*Trace, error) {
	out := &Trace{Header: TraceHeader{
		Format:  TraceFormatName,
		Version: TraceVersion,
		Source:  "account-rows import",
	}}
	addrKey := func(a types.Address) string { return "acct/" + a.String() }
	var cur *TraceTx
	var curHash types.Hash
	flush := func() {
		if cur != nil {
			out.Txs = append(out.Txs, *cur)
			cur = nil
		}
	}
	addOps := func(tx *TraceTx, key string) {
		for _, op := range tx.Ops {
			if op.Key == key {
				return
			}
		}
		tx.Ops = append(tx.Ops,
			TraceOp{Kind: OpRead, Key: key},
			TraceOp{Kind: OpWrite, Key: key})
	}
	for i, r := range rows {
		if r.IsInternal {
			if cur == nil {
				return nil, fmt.Errorf("%w: row %d: internal row before any transaction", ErrBadRecord, i)
			}
			if r.Hash != curHash {
				return nil, fmt.Errorf("%w: row %d: internal row of %s does not follow its transaction", ErrBadRecord, i, r.Hash.Short())
			}
			addOps(cur, addrKey(r.From))
			addOps(cur, addrKey(r.To))
			continue
		}
		flush()
		curHash = r.Hash
		index := 0
		if n := len(out.Txs); n > 0 && out.Txs[n-1].Block == r.BlockNumber {
			index = out.Txs[n-1].Index + 1
		}
		cur = &TraceTx{
			Block:  r.BlockNumber,
			Index:  index,
			Sender: addrKey(r.From),
			Cost:   r.GasUsed,
		}
		addOps(cur, addrKey(r.From))
		addOps(cur, addrKey(r.To))
	}
	flush()
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: imported trace invalid: %w", err)
	}
	return out, nil
}
