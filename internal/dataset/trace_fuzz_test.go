package dataset

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzTraceRoundTrip feeds arbitrary bytes to both trace decoders. The
// contract under test: malformed input — truncated streams, duplicate
// keys, version skew, stray garbage — must return an error, never panic;
// and any input a decoder accepts must survive a write/read round trip in
// both encodings without changing.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(goldenRWSet)
	f.Add([]byte(`{"format":"txconcur-rwset","version":1}` + "\n"))
	f.Add([]byte(`{"format":"txconcur-rwset","version":1}` + "\n" +
		`{"block":0,"index":0,"sender":"a","ops":[{"op":"d","key":"k","value":1}],"cost":5}` + "\n"))
	// Truncated mid-row.
	f.Add([]byte(`{"format":"txconcur-rwset","version":1}` + "\n" + `{"block":0,"index":0,"sen`))
	// Duplicate (kind,key).
	f.Add([]byte(`{"format":"txconcur-rwset","version":1}` + "\n" +
		`{"block":0,"index":0,"sender":"a","ops":[{"op":"r","key":"k"},{"op":"r","key":"k"}]}` + "\n"))
	// Version skew.
	f.Add([]byte(`{"format":"txconcur-rwset","version":99}` + "\n"))
	// CSV shape.
	f.Add([]byte("txconcur-rwset,1,s\n0,0,a,5,d:k:1\n"))
	f.Add([]byte("txconcur-rwset,1,s\n0,0,a,5,d:k:1:extra\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if tr, err := ReadTrace(bytes.NewReader(data)); err == nil {
			roundTripBoth(t, tr)
		}
		if tr, err := ReadTraceCSV(bytes.NewReader(data)); err == nil {
			roundTripBoth(t, tr)
		}
		// The streaming reader must agree with the batch reader: same rows
		// or an error at the same point, and no panic either way.
		streamTrace(data)
	})
}

func roundTripBoth(t *testing.T, tr *Trace) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace on accepted trace: %v", err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("re-read JSONL: %v", err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("JSONL round trip changed the trace")
	}
	buf.Reset()
	if err := WriteTraceCSV(&buf, tr); err != nil {
		t.Fatalf("WriteTraceCSV on accepted trace: %v", err)
	}
	back, err = ReadTraceCSV(&buf)
	if err != nil {
		t.Fatalf("re-read CSV: %v", err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("CSV round trip changed the trace")
	}
}

func streamTrace(data []byte) {
	r, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		return
	}
	for {
		if _, err := r.Next(); err != nil {
			if err == io.EOF {
				return
			}
			return
		}
	}
}
