// Package dataset reproduces the paper's data-collection methodology
// (§III-B, §III-C): chain histories are exported into tables following the
// Google BigQuery public-dataset schemas, and the paper's SQL + JavaScript
// UDF pipeline (Figures 2 and 3) is re-implemented over those tables. The
// pipeline's per-block outputs (num_transactions, num_conflict_txs,
// max_lcc_size) are validated against the direct implementation in package
// core, giving two independent paths to every metric.
package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"txconcur/internal/account"
	"txconcur/internal/core"
	"txconcur/internal/graph"
	"txconcur/internal/types"
	"txconcur/internal/utxo"
)

// TxInputRow mirrors one element of the BigQuery `inputs` array of a
// UTXO-chain transaction row (crypto_bitcoin.transactions schema).
type TxInputRow struct {
	SpentTransactionHash types.Hash `json:"spent_transaction_hash"`
	SpentOutputIndex     uint32     `json:"spent_output_index"`
}

// UTXOTxRow is one row of the UTXO-model transactions table.
type UTXOTxRow struct {
	BlockNumber uint64       `json:"block_number"`
	BlockTime   int64        `json:"block_timestamp"`
	Hash        types.Hash   `json:"hash"`
	IsCoinbase  bool         `json:"is_coinbase"`
	Inputs      []TxInputRow `json:"inputs"`
	OutputCount int          `json:"output_count"`
}

// AccountTxRow is one row of the account-model traces table (the union of
// regular transactions and internal-call traces, as in the BigQuery
// crypto_ethereum.traces schema).
type AccountTxRow struct {
	BlockNumber uint64        `json:"block_number"`
	BlockTime   int64         `json:"block_timestamp"`
	Hash        types.Hash    `json:"transaction_hash"`
	From        types.Address `json:"from_address"`
	To          types.Address `json:"to_address"`
	GasUsed     uint64        `json:"gas_used"`
	IsInternal  bool          `json:"is_internal"` // trace rows that are not regular transactions
}

// FromUTXOBlock exports a UTXO block into table rows.
func FromUTXOBlock(b *utxo.Block) []UTXOTxRow {
	rows := make([]UTXOTxRow, 0, len(b.Txs))
	for _, tx := range b.Txs {
		row := UTXOTxRow{
			BlockNumber: b.Height,
			BlockTime:   b.Time,
			Hash:        tx.ID(),
			IsCoinbase:  tx.IsCoinbase(),
			OutputCount: len(tx.Outputs),
		}
		for _, in := range tx.Inputs {
			row.Inputs = append(row.Inputs, TxInputRow{
				SpentTransactionHash: in.Prev.TxID,
				SpentOutputIndex:     in.Prev.Index,
			})
		}
		rows = append(rows, row)
	}
	return rows
}

// FromAccountBlock exports an executed account block into trace-table rows:
// one row per regular transaction plus one per internal transaction.
func FromAccountBlock(b *account.Block, receipts []*account.Receipt) []AccountTxRow {
	rows := make([]AccountTxRow, 0, len(b.Txs))
	for i, tx := range b.Txs {
		to := tx.To
		var gas uint64
		if i < len(receipts) {
			gas = receipts[i].GasUsed
			if tx.IsCreation() {
				to = receipts[i].To
			}
		}
		rows = append(rows, AccountTxRow{
			BlockNumber: b.Height,
			BlockTime:   b.Time,
			Hash:        tx.Hash(),
			From:        tx.From,
			To:          to,
			GasUsed:     gas,
		})
		if i < len(receipts) {
			for _, itx := range receipts[i].Internal {
				rows = append(rows, AccountTxRow{
					BlockNumber: b.Height,
					BlockTime:   b.Time,
					Hash:        tx.Hash(),
					From:        itx.From,
					To:          itx.To,
					IsInternal:  true,
				})
			}
		}
	}
	return rows
}

// BlockResult mirrors the output row of the paper's Figure 2 query:
// per-block transaction count, conflicted-transaction count, and largest
// connected component size (plus the gas-weighted inputs the Ethereum
// variant of the query passes to its UDF).
type BlockResult struct {
	BlockNumber     uint64 `json:"block_number"`
	BlockTime       int64  `json:"block_timestamp"`
	NumTransactions int    `json:"num_transactions"`
	NumConflictTxs  int    `json:"num_conflict_txs"`
	MaxLCCSize      int    `json:"max_lcc_size"`
	NumInputs       int    `json:"num_inputs"`
	NumInternal     int    `json:"num_internal"`
	GasUsed         uint64 `json:"gas_used"`
	ConflictGas     uint64 `json:"conflict_gas"`
	MaxLCCGas       uint64 `json:"max_lcc_gas"`
}

// ProcessUTXOGraph is the paper's process_graph UDF for UTXO chains
// (Figures 2–3): given the per-block arrays txs[i] (hash of the transaction
// spending input i) and spentTxs[i] (hash of the transaction that created
// input i), it builds the TDG — an edge whenever both endpoints are
// transactions of the block — and derives the metrics via breadth-first
// search.
func ProcessUTXOGraph(blockTxs []types.Hash, txs, spentTxs []types.Hash) (numTx, numConflict, maxLCC int, err error) {
	if len(txs) != len(spentTxs) {
		return 0, 0, 0, fmt.Errorf("dataset: array length mismatch: %d vs %d", len(txs), len(spentTxs))
	}
	in := graph.NewInterner[types.Hash](len(blockTxs))
	for _, h := range blockTxs {
		in.ID(h)
	}
	g := graph.NewUndirected(in.Len())
	for i := range txs {
		spender, ok1 := in.Lookup(txs[i])
		creator, ok2 := in.Lookup(spentTxs[i])
		if ok1 && ok2 && spender != creator {
			g.AddEdge(creator, spender)
		}
	}
	st := graph.Stats(g.ConnectedComponents())
	numTx = in.Len()
	numConflict = numTx - st.Singletons
	maxLCC = st.Largest
	return numTx, numConflict, maxLCC, nil
}

// AccountGraphResult is the output of the account-model UDF, including the
// gas-weighted numerators the paper's Ethereum query collects ("for
// Ethereum we also pass a list of transaction gas costs to the UDF",
// §III-C).
type AccountGraphResult struct {
	NumTx       int
	NumConflict int
	MaxLCC      int
	Gas         uint64
	ConflictGas uint64
	MaxLCCGas   uint64
}

// ProcessAccountGraph is the account-model variant of the UDF: nodes are
// addresses, edges are (from, to) pairs of regular and internal
// transactions, and the component decomposition of the addresses is mapped
// back onto the regular transactions (the paper's "one more step", §III-C).
func ProcessAccountGraph(rows []AccountTxRow) AccountGraphResult {
	in := graph.NewInterner[types.Address](2 * len(rows))
	g := graph.NewUndirected(0)
	for _, r := range rows {
		a, b := in.ID(r.From), in.ID(r.To)
		g.Grow(in.Len())
		g.AddEdge(a, b)
	}
	comp := make([]int, in.Len())
	ccs := g.ConnectedComponents()
	for ci, cc := range ccs {
		for _, node := range cc {
			comp[node] = ci
		}
	}
	txPerComp := make(map[int]int, len(ccs))
	gasPerComp := make(map[int]uint64, len(ccs))
	for _, r := range rows {
		if r.IsInternal {
			continue
		}
		id, _ := in.Lookup(r.From)
		txPerComp[comp[id]]++
		gasPerComp[comp[id]] += r.GasUsed
	}
	var out AccountGraphResult
	for _, r := range rows {
		if r.IsInternal {
			continue
		}
		out.NumTx++
		out.Gas += r.GasUsed
		id, _ := in.Lookup(r.From)
		if txPerComp[comp[id]] >= 2 {
			out.NumConflict++
			out.ConflictGas += r.GasUsed
		}
	}
	for ci, c := range txPerComp {
		if c > out.MaxLCC {
			out.MaxLCC = c
		}
		if g := gasPerComp[ci]; g > out.MaxLCCGas {
			out.MaxLCCGas = g
		}
	}
	return out
}

// QueryUTXO runs the Figure 2 pipeline over a UTXO transactions table:
// group rows by block, build the per-block input arrays, and apply the UDF.
// Results are ordered by block number (the query's ORDER BY).
func QueryUTXO(rows []UTXOTxRow) ([]BlockResult, error) {
	byBlock := make(map[uint64][]UTXOTxRow)
	for _, r := range rows {
		byBlock[r.BlockNumber] = append(byBlock[r.BlockNumber], r)
	}
	blocks := make([]uint64, 0, len(byBlock))
	for b := range byBlock {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })

	out := make([]BlockResult, 0, len(blocks))
	for _, bn := range blocks {
		group := byBlock[bn]
		var blockTxs, txs, spentTxs []types.Hash
		inputs := 0
		var t int64
		for _, r := range group {
			t = r.BlockTime
			inputs += len(r.Inputs)
			if r.IsCoinbase {
				continue // the paper ignores coinbase transactions
			}
			blockTxs = append(blockTxs, r.Hash)
			for _, in := range r.Inputs {
				txs = append(txs, r.Hash)
				spentTxs = append(spentTxs, in.SpentTransactionHash)
			}
		}
		numTx, numConflict, maxLCC, err := ProcessUTXOGraph(blockTxs, txs, spentTxs)
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", bn, err)
		}
		out = append(out, BlockResult{
			BlockNumber:     bn,
			BlockTime:       t,
			NumTransactions: numTx,
			NumConflictTxs:  numConflict,
			MaxLCCSize:      maxLCC,
			NumInputs:       inputs,
		})
	}
	return out, nil
}

// QueryAccount runs the Ethereum-variant pipeline over an account traces
// table.
func QueryAccount(rows []AccountTxRow) ([]BlockResult, error) {
	byBlock := make(map[uint64][]AccountTxRow)
	for _, r := range rows {
		byBlock[r.BlockNumber] = append(byBlock[r.BlockNumber], r)
	}
	blocks := make([]uint64, 0, len(byBlock))
	for b := range byBlock {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })

	out := make([]BlockResult, 0, len(blocks))
	for _, bn := range blocks {
		group := byBlock[bn]
		res := ProcessAccountGraph(group)
		internal := 0
		var t int64
		for _, r := range group {
			t = r.BlockTime
			if r.IsInternal {
				internal++
			}
		}
		out = append(out, BlockResult{
			BlockNumber:     bn,
			BlockTime:       t,
			NumTransactions: res.NumTx,
			NumConflictTxs:  res.NumConflict,
			MaxLCCSize:      res.MaxLCC,
			NumInternal:     internal,
			GasUsed:         res.Gas,
			ConflictGas:     res.ConflictGas,
			MaxLCCGas:       res.MaxLCCGas,
		})
	}
	return out, nil
}

// Metrics converts a BlockResult into the core metric type, so dataset
// results flow into the analysis pipeline.
func (r BlockResult) Metrics() core.Metrics {
	return core.Metrics{
		NumTxs:        r.NumTransactions,
		NumInternal:   r.NumInternal,
		NumInputs:     r.NumInputs,
		Conflicted:    r.NumConflictTxs,
		LCC:           r.MaxLCCSize,
		GasUsed:       r.GasUsed,
		ConflictedGas: r.ConflictGas,
		LCCGas:        r.MaxLCCGas,
	}
}

// ErrBadRecord reports a malformed line in a table file.
var ErrBadRecord = errors.New("dataset: malformed record")

// WriteJSONL writes rows as JSON Lines.
func WriteJSONL[T any](w io.Writer, rows []T) error {
	enc := json.NewEncoder(w)
	for i := range rows {
		if err := enc.Encode(rows[i]); err != nil {
			return fmt.Errorf("dataset: encode row %d: %w", i, err)
		}
	}
	return nil
}

// ReadJSONL reads a JSON Lines table: one JSON value per line, blank
// lines skipped. Parse errors report the 1-based line number, and
// trailing garbage is rejected rather than silently absorbed — a second
// value on one line, text after a value, and bare `null` lines (which a
// plain json.Decoder loop happily turns into phantom zero-value rows) are
// all errors.
func ReadJSONL[T any](r io.Reader) ([]T, error) {
	lr := newLineReader(r)
	var out []T
	for {
		line, n, err := lr.next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, n, err)
		}
		var row T
		if err := decodeJSONLine(line, &row); err != nil {
			return nil, fmt.Errorf("%w: line %d: %w", ErrBadRecord, n, err)
		}
		out = append(out, row)
	}
}
