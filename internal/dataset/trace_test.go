package dataset

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"txconcur/internal/exec"
	"txconcur/internal/types"
)

func smallTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := GenerateERC20Trace(ERC20TraceConfig{Blocks: 3, TxPerBlock: 12, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	tr := smallTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("JSONL round trip changed the trace")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr := smallTrace(t)
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("CSV round trip changed the trace")
	}
}

func TestTraceReaderStreams(t *testing.T) {
	tr := smallTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header != tr.Header {
		t.Fatalf("header %+v != %+v", r.Header, tr.Header)
	}
	var rows []TraceTx
	for {
		row, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, *row)
	}
	if !reflect.DeepEqual(rows, tr.Txs) {
		t.Fatal("streamed rows differ from batch read")
	}
}

// TestTraceRejects pins the validator's rejection surface: header-level
// failures wrap ErrTraceFormat, row-level failures wrap ErrBadRecord, and
// nothing panics.
func TestTraceRejects(t *testing.T) {
	header := `{"format":"txconcur-rwset","version":1}` + "\n"
	headerCases := map[string]string{
		"empty input":                "",
		"wrong format name":          `{"format":"other","version":1}` + "\n",
		"version skew":               `{"format":"txconcur-rwset","version":2}` + "\n",
		"null header":                "null\n",
		"trailing garbage on header": `{"format":"txconcur-rwset","version":1} {"x":1}` + "\n",
	}
	for name, in := range headerCases {
		if _, err := ReadTrace(strings.NewReader(in)); !errors.Is(err, ErrTraceFormat) {
			t.Errorf("%s: got %v, want ErrTraceFormat", name, err)
		}
	}
	rowCases := map[string]string{
		"null row":             header + "null\n",
		"row starts mid-block": header + `{"block":0,"index":1,"sender":"a","ops":[{"op":"d","key":"k","value":1}]}` + "\n",
		"index gap": header +
			`{"block":0,"index":0,"sender":"a","ops":[{"op":"d","key":"k","value":1}]}` + "\n" +
			`{"block":0,"index":2,"sender":"a","ops":[{"op":"d","key":"k","value":1}]}` + "\n",
		"block goes backwards": header +
			`{"block":5,"index":0,"sender":"a","ops":[{"op":"d","key":"k","value":1}]}` + "\n" +
			`{"block":4,"index":0,"sender":"a","ops":[{"op":"d","key":"k","value":1}]}` + "\n",
		"unknown op kind":      header + `{"block":0,"index":0,"sender":"a","ops":[{"op":"x","key":"k"}]}` + "\n",
		"empty key":            header + `{"block":0,"index":0,"sender":"a","ops":[{"op":"r","key":""}]}` + "\n",
		"colon in key":         header + `{"block":0,"index":0,"sender":"a","ops":[{"op":"r","key":"a:b"}]}` + "\n",
		"empty sender":         header + `{"block":0,"index":0,"sender":"","ops":[{"op":"r","key":"k"}]}` + "\n",
		"read with value":      header + `{"block":0,"index":0,"sender":"a","ops":[{"op":"r","key":"k","value":1}]}` + "\n",
		"zero delta":           header + `{"block":0,"index":0,"sender":"a","ops":[{"op":"d","key":"k"}]}` + "\n",
		"duplicate (kind,key)": header + `{"block":0,"index":0,"sender":"a","ops":[{"op":"r","key":"k"},{"op":"r","key":"k"}]}` + "\n",
		"delta plus write":     header + `{"block":0,"index":0,"sender":"a","ops":[{"op":"d","key":"k","value":1},{"op":"w","key":"k","value":2}]}` + "\n",
	}
	for name, in := range rowCases {
		if _, err := ReadTrace(strings.NewReader(in)); !errors.Is(err, ErrBadRecord) {
			t.Errorf("%s: got %v, want ErrBadRecord", name, err)
		}
	}
}

// TestReadJSONLLineNumbers pins the satellite fix: parse errors cite
// 1-based line numbers, and trailing garbage after a row's JSON value is
// an error, not a silently decoded phantom row.
func TestReadJSONLLineNumbers(t *testing.T) {
	_, err := ReadJSONL[AccountTxRow](strings.NewReader("{\"block_number\":1}\nnot json\n"))
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("got %v, want ErrBadRecord", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not cite line 2", err)
	}

	if _, err := ReadJSONL[AccountTxRow](strings.NewReader("{} {}\n")); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("two values on one line: got %v, want ErrBadRecord", err)
	}
	if _, err := ReadJSONL[AccountTxRow](strings.NewReader("null\n")); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("bare null row: got %v, want ErrBadRecord", err)
	}

	rows, err := ReadJSONL[AccountTxRow](strings.NewReader("{\"block_number\":7}"))
	if err != nil || len(rows) != 1 || rows[0].BlockNumber != 7 {
		t.Fatalf("missing final newline: rows=%v err=%v", rows, err)
	}
}

// TestGeneratorDeterminism: same seed, same trace; different seed,
// different trace (testing/quick over seeds).
func TestGeneratorDeterminism(t *testing.T) {
	same := func(seed int64) bool {
		a, err1 := GenerateERC20Trace(ERC20TraceConfig{Blocks: 2, TxPerBlock: 8, Seed: seed})
		b, err2 := GenerateERC20Trace(ERC20TraceConfig{Blocks: 2, TxPerBlock: 8, Seed: seed})
		return err1 == nil && err2 == nil && reflect.DeepEqual(a, b)
	}
	if err := quick.Check(same, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
	a, _ := GenerateERC20Trace(ERC20TraceConfig{Blocks: 2, TxPerBlock: 8, Seed: 1})
	b, _ := GenerateERC20Trace(ERC20TraceConfig{Blocks: 2, TxPerBlock: 8, Seed: 2})
	if reflect.DeepEqual(a.Txs, b.Txs) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTraceBlocksRoundTrip: trace -> replay blocks -> trace is the
// identity (testing/quick over generator seeds).
func TestTraceBlocksRoundTrip(t *testing.T) {
	roundTrip := func(seed int64) bool {
		tr, err := GenerateERC20Trace(ERC20TraceConfig{Blocks: 2, TxPerBlock: 10, Seed: seed})
		if err != nil {
			return false
		}
		rc, err := BuildReplayChain(tr)
		if err != nil {
			return false
		}
		back, err := rc.Trace()
		if err != nil {
			return false
		}
		// Block numbers are renumbered 0.. during the build; the original
		// numbering is preserved in rc.BlockNumbers, so compare modulo it.
		want := *tr
		want.Txs = append([]TraceTx(nil), tr.Txs...)
		renum := make(map[uint64]uint64, len(rc.BlockNumbers))
		for i, bn := range rc.BlockNumbers {
			renum[bn] = uint64(i)
		}
		for i := range want.Txs {
			want.Txs[i].Block = renum[want.Txs[i].Block]
		}
		return reflect.DeepEqual(&want, back)
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestCostPermutationInvariance: the measured costs live in a side table,
// never in state, so permuting them across transactions cannot change any
// replay root (testing/quick over permutation seeds).
func TestCostPermutationInvariance(t *testing.T) {
	tr := smallTrace(t)
	rc, err := BuildReplayChain(tr)
	if err != nil {
		t.Fatal(err)
	}
	baseRoot, err := seqChainRoot(rc)
	if err != nil {
		t.Fatal(err)
	}
	perm := func(seed int64) bool {
		mut := *tr
		mut.Txs = append([]TraceTx(nil), tr.Txs...)
		rng := rand.New(rand.NewSource(seed))
		costs := make([]uint64, len(mut.Txs))
		for i := range mut.Txs {
			costs[i] = mut.Txs[i].Cost
		}
		rng.Shuffle(len(costs), func(i, j int) { costs[i], costs[j] = costs[j], costs[i] })
		for i := range mut.Txs {
			mut.Txs[i].Cost = costs[i]
		}
		mrc, err := BuildReplayChain(&mut)
		if err != nil {
			return false
		}
		root, err := seqChainRoot(mrc)
		return err == nil && root == baseRoot
	}
	if err := quick.Check(perm, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func seqChainRoot(rc *ReplayChain) (types.Hash, error) {
	st := rc.Pre.Copy()
	for _, blk := range rc.Blocks {
		if _, err := exec.Sequential(st, blk); err != nil {
			return types.Hash{}, err
		}
	}
	return st.Root(), nil
}

// TestTraceFromAccountRows exercises the importer on a tiny handmade
// table, including internal calls widening the read/write set.
func TestTraceFromAccountRows(t *testing.T) {
	a := types.AddressFromUint64("t", 1)
	b := types.AddressFromUint64("t", 2)
	c := types.AddressFromUint64("t", 3)
	h1 := types.Hash{1}
	h2 := types.Hash{2}
	rows := []AccountTxRow{
		{BlockNumber: 9, Hash: h1, From: a, To: b, GasUsed: 30000},
		{BlockNumber: 9, Hash: h1, From: b, To: c, IsInternal: true},
		{BlockNumber: 9, Hash: h2, From: c, To: a, GasUsed: 21000},
	}
	tr, err := TraceFromAccountRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Txs) != 2 {
		t.Fatalf("got %d rows, want 2", len(tr.Txs))
	}
	// Tx 0 touches a, b from the top-level transfer and c via the internal
	// call: 3 keys, each read+written.
	if got := len(tr.Txs[0].Ops); got != 6 {
		t.Fatalf("tx 0: %d ops, want 6", got)
	}
	if tr.Txs[0].Cost != 30000 || tr.Txs[1].Cost != 21000 {
		t.Fatalf("costs %d,%d", tr.Txs[0].Cost, tr.Txs[1].Cost)
	}
	// Orphan internal rows (no preceding parent with the same hash) error.
	if _, err := TraceFromAccountRows([]AccountTxRow{
		{BlockNumber: 1, Hash: h1, From: a, To: b, IsInternal: true},
	}); err == nil {
		t.Fatal("orphan internal row accepted")
	}
	// The imported trace must compile and replay.
	rc, err := BuildReplayChain(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seqChainRoot(rc); err != nil {
		t.Fatal(err)
	}
}
