package dataset

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/exec"
	"txconcur/internal/types"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.expected.json")

// goldenExpected is the committed ground truth for the golden rwset
// fixture: the exact per-block dataset metrics (the paper's process_graph
// pipeline over the replayed blocks) and the exact state roots of the
// sequential replay. Any change to the trace format, the replay compiler,
// the VM, or the state commitment shows up here as a diff.
type goldenExpected struct {
	ChainRoot  types.Hash    `json:"chain_root"`
	BlockRoots []types.Hash  `json:"block_roots"`
	Results    []BlockResult `json:"results"`
}

func computeGoldenExpected(t *testing.T) goldenExpected {
	t.Helper()
	tr, err := GoldenTrace()
	if err != nil {
		t.Fatalf("GoldenTrace: %v", err)
	}
	rc, err := BuildReplayChain(tr)
	if err != nil {
		t.Fatalf("BuildReplayChain: %v", err)
	}
	st := rc.Pre.Copy()
	var exp goldenExpected
	var rows []AccountTxRow
	for i, blk := range rc.Blocks {
		res, err := exec.Sequential(st, blk)
		if err != nil {
			t.Fatalf("sequential replay block %d: %v", i, err)
		}
		for j, rcpt := range res.Receipts {
			if rcpt.Status != 1 {
				t.Fatalf("block %d tx %d: status %d", i, j, rcpt.Status)
			}
		}
		exp.BlockRoots = append(exp.BlockRoots, res.Root)
		rows = append(rows, FromAccountBlock(blk, res.Receipts)...)
	}
	exp.ChainRoot = st.Root()
	exp.Results, err = QueryAccount(rows)
	if err != nil {
		t.Fatalf("QueryAccount: %v", err)
	}
	return exp
}

// TestGoldenTraceReplay pins the golden fixture's replay to the committed
// expectations, exactly.
func TestGoldenTraceReplay(t *testing.T) {
	got := computeGoldenExpected(t)
	path := filepath.Join("testdata", "golden.expected.json")
	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden expectations (rerun with -update to regenerate): %v", err)
	}
	var want goldenExpected
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatalf("parse golden expectations: %v", err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Errorf("per-block metrics diverged from %s\n got: %+v\nwant: %+v", path, got.Results, want.Results)
	}
	if !reflect.DeepEqual(got.BlockRoots, want.BlockRoots) {
		t.Errorf("block roots diverged from %s\n got: %v\nwant: %v", path, got.BlockRoots, want.BlockRoots)
	}
	if got.ChainRoot != want.ChainRoot {
		t.Errorf("chain root diverged from %s\n got: %v\nwant: %v", path, got.ChainRoot, want.ChainRoot)
	}
}

// TestGoldenTraceEngines replays the golden fixture through every engine
// family and checks roots and receipts against the sequential oracle —
// the golden fixture is small enough to afford running all of them in a
// unit test (the -race CI step drives exactly this test).
func TestGoldenTraceEngines(t *testing.T) {
	tr, err := GoldenTrace()
	if err != nil {
		t.Fatalf("GoldenTrace: %v", err)
	}
	rc, err := BuildReplayChain(tr)
	if err != nil {
		t.Fatalf("BuildReplayChain: %v", err)
	}
	// Sequential oracle.
	st := rc.Pre.Copy()
	var roots []types.Hash
	var oracles [][]*account.Receipt
	for i, blk := range rc.Blocks {
		res, err := exec.Sequential(st, blk)
		if err != nil {
			t.Fatalf("sequential block %d: %v", i, err)
		}
		roots = append(roots, res.Root)
		oracles = append(oracles, res.Receipts)
	}
	seqRoot := st.Root()

	for _, op := range []bool{false, true} {
		perBlock := map[string]func(st *account.StateDB, blk *account.Block) (*exec.Result, error){
			"speculative": exec.Speculative{Workers: 4, OpLevel: op, Cost: rc.TxCost}.Execute,
			"stm":         exec.STMExec{Workers: 4, OpLevel: op, Cost: rc.TxCost}.Execute,
			"sharded":     exec.Sharded{Workers: 4, Shards: 2, OpLevel: op, Depth: 2, Cost: rc.TxCost}.Execute,
		}
		for name, run := range perBlock {
			work := rc.Pre.Copy()
			for i, blk := range rc.Blocks {
				res, err := run(work, blk)
				if err != nil {
					t.Fatalf("%s op=%v block %d: %v", name, op, i, err)
				}
				if res.Root != roots[i] {
					t.Fatalf("%s op=%v block %d: root diverged", name, op, i)
				}
				for j, r := range res.Receipts {
					w := oracles[i][j]
					if r.Status != w.Status || r.GasUsed != w.GasUsed || r.TxHash != w.TxHash {
						t.Fatalf("%s op=%v block %d: receipt %d diverged", name, op, i, j)
					}
				}
			}
		}
		pipe, err := exec.Pipeline{Workers: 4, Depth: 2, OpLevel: op, Cost: rc.TxCost}.ExecuteChain(rc.Pre.Copy(), rc.Blocks)
		if err != nil {
			t.Fatalf("pipeline op=%v: %v", op, err)
		}
		if pipe.Root != seqRoot {
			t.Fatalf("pipeline op=%v: root diverged", op)
		}
		cr, _, err := exec.Sharded{Workers: 4, Shards: 2, OpLevel: op, Depth: 2, Cost: rc.TxCost}.
			ExecuteChain(rc.Pre.Copy(), rc.Blocks)
		if err != nil {
			t.Fatalf("sharded chain op=%v: %v", op, err)
		}
		if cr.Root != seqRoot {
			t.Fatalf("sharded chain op=%v: root diverged", op)
		}
	}
}
