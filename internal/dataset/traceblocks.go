package dataset

import (
	"encoding/binary"
	"fmt"

	"txconcur/internal/account"
	"txconcur/internal/types"
	"txconcur/internal/vm"
)

// Trace replay: BuildReplayChain compiles an rwset trace into executable
// account-model blocks whose conflict structure is exactly the declared
// one, so the execution engines can be measured on captured (or
// synthesized) real-chain conflict graphs instead of chainsim's profiles.
//
// The compilation scheme. Every distinct trace key becomes a "cell"
// contract at a deterministic address; every trace row becomes a private
// "script" contract plus one transaction calling it. The script makes one
// VM call into the relevant cell per declared op, encoding the op kind in
// the call argument:
//
//	arg 0        — delta: no cell code runs beyond the dispatch; the call
//	               carries the increment as its value, so the only state
//	               effect is a blind balance credit of the cell (a
//	               commutative delta in op-level mode).
//	arg 1        — read: the cell reads its own balance and storage slot 0.
//	arg v+2      — write: the cell reads its balance and stores v into
//	               slot 0.
//
// Reads and writes both touch the cell's balance (a read) so they conflict
// with deltas; reads and writes share storage slot 0 so they conflict with
// each other; two deltas only commute. That reproduces, per key, the exact
// conflict matrix of the rwset semantics — in both key-level and
// operation-level engine modes (key-level additionally treats the delta's
// credit as a read-modify-write, making deltas mutually conflicting there,
// which is precisely the refinement E8 measures).
//
// Costs deliberately never enter the compiled state: a row's measured cost
// is kept in a side table keyed by transaction hash and fed to the engines
// through their CostModel hook, so permuting costs can never change a
// state root (a property test pins this down).
const (
	// traceGasBase and traceGasPerOp size a script transaction's gas
	// limit from its op count alone — generous upper bounds on the real
	// VM cost, so the envelope never fails, and independent of both the
	// trace's values and its costs (state roots must not depend on
	// either... values excepted, of course, where they are state).
	traceGasBase  = 2_000
	traceGasPerOp = 6_000
)

// traceGasLimit is the gas limit of a script transaction with n ops.
func traceGasLimit(n int) uint64 {
	return account.GasTx + traceGasBase + traceGasPerOp*uint64(n)
}

// Cell call-argument encoding.
const (
	cellArgDelta = 0
	cellArgRead  = 1
	cellArgWrite = 2 // arg = cellArgWrite + written value
)

// cellCode is the shared dispatch contract deployed at every cell address.
func cellCode() []byte {
	return vm.EncodeContract(vm.Contract{
		Code: vm.NewAsm().
			// arg == 0: delta — the value transfer already happened.
			Op(vm.OpArg).Op(vm.OpIsZero).PushLabel("end").Op(vm.OpJumpI).
			// Both reads and writes observe the cell balance, so they
			// conflict with deltas in every engine mode.
			Op(vm.OpBalance).Op(vm.OpPop).
			Op(vm.OpArg).Push(cellArgRead).Op(vm.OpEQ).PushLabel("read").Op(vm.OpJumpI).
			// write: storage[0] = arg − 2.
			Push(0).Op(vm.OpArg).Push(cellArgWrite).Op(vm.OpSub).Op(vm.OpSstore).
			Label("end").Op(vm.OpStop).
			Label("read").Push(0).Op(vm.OpSload).Op(vm.OpPop).Op(vm.OpStop).
			Bytes(),
	})
}

// Deterministic address namespaces of the replay chain.
func cellAddress(keyIdx int) types.Address {
	return types.AddressFromUint64("trace/cell", uint64(keyIdx))
}
func scriptAddress(rowIdx int) types.Address {
	return types.AddressFromUint64("trace/script", uint64(rowIdx))
}
func senderAddress(senderIdx int) types.Address {
	return types.AddressFromUint64("trace/sender", uint64(senderIdx))
}

// traceCoinbase is the miner of every replay block.
func traceCoinbase() types.Address {
	return types.AddressFromUint64("trace/coinbase", 0)
}

// ReplayChain is a trace compiled to executable blocks: the pre-state
// (cells, scripts, and exactly-funded senders), the block sequence, and
// the dictionaries that make the compilation reversible (Trace) and the
// costs addressable (TxCost).
type ReplayChain struct {
	// Header is the source trace's header, carried through round trips.
	Header TraceHeader
	// Pre is the state before the first block.
	Pre *account.StateDB
	// Blocks is the block sequence, heights renumbered contiguously
	// from 0.
	Blocks []*account.Block
	// BlockNumbers holds the original trace block number of each block.
	BlockNumbers []uint64
	// Keys maps key index (cell address derivation) to trace key.
	Keys []string
	// Senders maps sender index (sender address derivation) to trace
	// sender.
	Senders []string
	// Costs maps a transaction hash to the row's measured cost; rows with
	// cost 0 ("unmeasured") are absent.
	Costs map[types.Hash]uint64

	keyAddr    map[string]types.Address
	addrKey    map[types.Address]string
	senderAddr map[string]types.Address
	addrSender map[types.Address]string
}

// TxCost is the replay chain's cost model: the row's measured cost when
// one was recorded, the actual gas used otherwise. Its method value has
// the exec.CostModel signature.
func (rc *ReplayChain) TxCost(tx *account.Transaction, rcpt *account.Receipt) uint64 {
	if c, ok := rc.Costs[tx.Hash()]; ok {
		return c
	}
	if rcpt == nil {
		return 0
	}
	return rcpt.GasUsed
}

// BuildReplayChain validates the trace and compiles it into a ReplayChain.
// Every sender is funded with exactly the gas and value its transactions
// need, so any divergence in replay surfaces as a loud envelope error
// rather than a silently different root.
func BuildReplayChain(t *Trace) (*ReplayChain, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	rc := &ReplayChain{
		Header:     t.Header,
		Pre:        account.NewStateDB(),
		Costs:      make(map[types.Hash]uint64),
		keyAddr:    make(map[string]types.Address),
		addrKey:    make(map[types.Address]string),
		senderAddr: make(map[string]types.Address),
		addrSender: make(map[types.Address]string),
	}
	cell := cellCode()
	internKey := func(key string) types.Address {
		if a, ok := rc.keyAddr[key]; ok {
			return a
		}
		a := cellAddress(len(rc.Keys))
		rc.Keys = append(rc.Keys, key)
		rc.keyAddr[key] = a
		rc.addrKey[a] = key
		rc.Pre.SetCode(a, cell)
		return a
	}
	internSender := func(s string) types.Address {
		if a, ok := rc.senderAddr[s]; ok {
			return a
		}
		a := senderAddress(len(rc.Senders))
		rc.Senders = append(rc.Senders, s)
		rc.senderAddr[s] = a
		rc.addrSender[a] = s
		return a
	}

	nonces := make(map[types.Address]uint64)
	endow := make(map[types.Address]account.Amount)
	var curTxs []*account.Transaction
	flush := func(blockNum uint64) {
		blk := &account.Block{
			Height:   uint64(len(rc.Blocks)),
			Time:     1_700_000_000 + 12*int64(len(rc.Blocks)),
			Coinbase: traceCoinbase(),
			Txs:      curTxs,
		}
		rc.Blocks = append(rc.Blocks, blk)
		rc.BlockNumbers = append(rc.BlockNumbers, blockNum)
		curTxs = nil
	}
	for i := range t.Txs {
		row := &t.Txs[i]
		if row.Index == 0 && len(curTxs) > 0 {
			flush(t.Txs[i-1].Block)
		}
		from := internSender(row.Sender)

		// Compile the row's ops into its private script contract.
		var table []types.Address
		tableIdx := make(map[types.Address]int)
		asm := vm.NewAsm()
		var value account.Amount
		for _, op := range row.Ops {
			cellAddr := internKey(op.Key)
			idx, ok := tableIdx[cellAddr]
			if !ok {
				idx = len(table)
				table = append(table, cellAddr)
				tableIdx[cellAddr] = idx
			}
			var callValue, callArg uint64
			switch op.Kind {
			case OpDelta:
				callValue, callArg = op.Value, cellArgDelta
				value += account.Amount(op.Value)
			case OpRead:
				callArg = cellArgRead
			case OpWrite:
				callArg = cellArgWrite + op.Value
			}
			asm.Call(idx, callValue, callArg).Op(vm.OpPop)
		}
		asm.Op(vm.OpStop)
		script := scriptAddress(i)
		rc.Pre.SetCode(script, vm.EncodeContract(vm.Contract{Code: asm.Bytes(), AddrTable: table}))

		tx := &account.Transaction{
			From:     from,
			To:       script,
			Value:    value,
			Nonce:    nonces[from],
			GasLimit: traceGasLimit(len(row.Ops)),
			GasPrice: 1,
		}
		nonces[from]++
		endow[from] += account.Amount(tx.GasLimit)*tx.GasPrice + value
		if row.Cost > 0 {
			rc.Costs[tx.Hash()] = row.Cost
		}
		curTxs = append(curTxs, tx)
	}
	if len(curTxs) > 0 {
		flush(t.Txs[len(t.Txs)-1].Block)
	}
	//txlint:ordered endowments hit distinct addresses and AddBalance is additive; any application order yields the same state
	for addr, amount := range endow {
		rc.Pre.AddBalance(addr, amount)
	}
	rc.Pre.DiscardJournal()
	return rc, nil
}

// Trace decompiles the chain back into the source trace: senders and keys
// through the dictionaries, ops by decoding each script contract, costs
// from the side table. BuildReplayChain followed by Trace is the identity
// on valid traces (a property test pins this down).
func (rc *ReplayChain) Trace() (*Trace, error) {
	out := &Trace{Header: rc.Header}
	for bi, blk := range rc.Blocks {
		for i, tx := range blk.Txs {
			sender, ok := rc.addrSender[tx.From]
			if !ok {
				return nil, fmt.Errorf("dataset: block %d tx %d: unknown sender address %s", bi, i, tx.From.Short())
			}
			contract, err := vm.DecodeContract(rc.Pre.GetCode(tx.To))
			if err != nil {
				return nil, fmt.Errorf("dataset: block %d tx %d: %w", bi, i, err)
			}
			ops, err := decodeScriptOps(contract, rc.addrKey)
			if err != nil {
				return nil, fmt.Errorf("dataset: block %d tx %d: %w", bi, i, err)
			}
			out.Txs = append(out.Txs, TraceTx{
				Block:  rc.BlockNumbers[bi],
				Index:  i,
				Sender: sender,
				Ops:    ops,
				Cost:   rc.Costs[tx.Hash()],
			})
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: decompiled trace invalid: %w", err)
	}
	return out, nil
}

// decodeScriptOps parses a script contract's rigid op pattern — per op
// Push(value) Push(arg) PushAddr(idx) Call Pop, then one final Stop —
// back into trace operations.
func decodeScriptOps(c vm.Contract, addrKey map[types.Address]string) ([]TraceOp, error) {
	code := c.Code
	pos := 0
	readPush := func() (uint64, error) {
		if pos+9 > len(code) || vm.Opcode(code[pos]) != vm.OpPush {
			return 0, fmt.Errorf("dataset: script offset %d: want PUSH", pos)
		}
		v := binary.BigEndian.Uint64(code[pos+1 : pos+9])
		pos += 9
		return v, nil
	}
	var ops []TraceOp
	for pos < len(code) && vm.Opcode(code[pos]) != vm.OpStop {
		value, err := readPush()
		if err != nil {
			return nil, err
		}
		arg, err := readPush()
		if err != nil {
			return nil, err
		}
		if pos+2 > len(code) || vm.Opcode(code[pos]) != vm.OpPushAddr {
			return nil, fmt.Errorf("dataset: script offset %d: want PUSHADDR", pos)
		}
		idx := int(code[pos+1])
		pos += 2
		if pos+2 > len(code) || vm.Opcode(code[pos]) != vm.OpCall || vm.Opcode(code[pos+1]) != vm.OpPop {
			return nil, fmt.Errorf("dataset: script offset %d: want CALL POP", pos)
		}
		pos += 2
		if idx >= len(c.AddrTable) {
			return nil, fmt.Errorf("dataset: script address index %d out of table (%d)", idx, len(c.AddrTable))
		}
		key, ok := addrKey[c.AddrTable[idx]]
		if !ok {
			return nil, fmt.Errorf("dataset: script calls unknown cell %s", c.AddrTable[idx].Short())
		}
		switch {
		case arg == cellArgDelta:
			ops = append(ops, TraceOp{Kind: OpDelta, Key: key, Value: value})
		case arg == cellArgRead:
			ops = append(ops, TraceOp{Kind: OpRead, Key: key})
		default:
			ops = append(ops, TraceOp{Kind: OpWrite, Key: key, Value: arg - cellArgWrite})
		}
	}
	if pos+1 != len(code) || vm.Opcode(code[pos]) != vm.OpStop {
		return nil, fmt.Errorf("dataset: script offset %d: want final STOP", pos)
	}
	return ops, nil
}
