package dataset

import (
	"bytes"
	_ "embed"
	"fmt"
)

// goldenRWSet is the committed golden trace fixture: three blocks of
// hand-written rows covering every op shape the format admits — blind
// deltas that commute op-level (tok0/bal/bob), read-modify-write pairs on
// a shared pool key, a lone write, a lone read, a cross-key mix, and a
// block-number gap (100, 101, 103) that the replay renumbers.
//
//go:embed testdata/golden.rwset.jsonl
var goldenRWSet []byte

// GoldenTrace parses the embedded golden rwset fixture. Every caller gets
// a fresh copy; the fixture is validated on the way in, so a corrupted
// checkout fails loudly rather than skewing results.
func GoldenTrace() (*Trace, error) {
	t, err := ReadTrace(bytes.NewReader(goldenRWSet))
	if err != nil {
		return nil, fmt.Errorf("dataset: embedded golden trace: %w", err)
	}
	return t, nil
}
