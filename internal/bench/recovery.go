package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/client"
	"txconcur/internal/exec"
	"txconcur/internal/mempool"
	"txconcur/internal/types"
	"txconcur/internal/wal"
)

// recoveryStream is the E14 workload: the Shard Skew traffic shape (sweep
// bots consolidating into collectors — real conflicts for the packer and
// the sharded merge) scaled down to a few thousand accounts so the
// checkpoint cost is the per-interval export, not a constant 25k-account
// state dump that drowns the interval sweep.
func recoveryStream(seed int64) (*streamWorkload, error) {
	p := chainsim.Profile{
		Name: "Recovery Skew", Model: chainsim.Account, Consensus: "PoW",
		DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []chainsim.Era{
			{Name: "skew", Weight: 1, StartTime: 1577836800, BlockInterval: 15,
				TxPerBlock: 120, TxPerBlockJitter: 0.3, Users: 2400,
				ActiveFrac: 2.5, HotSenderFrac: 0.6, HotSenders: 4},
		},
	}
	pre, blks, err := chainsim.GenerateAccountChain(p, 8, seed)
	if err != nil {
		return nil, err
	}
	w := &streamWorkload{name: "recovery-skew", pre: pre}
	total := 0
	for _, b := range blks {
		total += len(b.Txs)
		for _, tx := range b.Txs {
			pr := mempool.PredictTransfer(tx)
			w.subs = append(w.subs, client.SubmitTx{
				From: tx.From, To: tx.To, Value: tx.Value, Nonce: tx.Nonce,
				GasLimit: tx.GasLimit, GasPrice: tx.GasPrice, Arg: tx.Arg, Code: tx.Code,
				Reads: pr.Reads, Writes: pr.Writes, Deltas: pr.Deltas,
			})
		}
	}
	w.blockTxs = total / len(blks)
	return w, nil
}

// recoveryResult is one durable (or control) service run plus its timed
// recovery.
type recoveryResult struct {
	txs, blocks    int
	ckpts, skipped int
	lat            mempool.LatencyStats // submit → server ack, per transaction
	wall           time.Duration
	replayed       int // log-suffix blocks re-executed by recovery
	recovery       time.Duration
}

// runRecovery performs one end-to-end durable service run: HTTP submission
// clients against the durable builder server (every ack means the block
// holding the transaction is fsynced in the WAL), the builder appending to
// the block log before the streaming executor sees a block, and the
// executor checkpointing committed state every `every` blocks off the
// commit path. After a clean shutdown the durability directory is reopened
// cold and recovery — latest valid checkpoint plus sharded replay of the
// log suffix — is timed and verified root-for-root against both the live
// run and the sequential replay. every < 0 runs the in-memory control (no
// WAL, admission acks): its ack latency is the floor the durable rows are
// measured against.
func runRecovery(w *streamWorkload, every, workers, shards int) (*recoveryResult, error) {
	durable := every >= 0
	var d *wal.Dir
	var ckpt *wal.Checkpointer
	var dir string
	if durable {
		var err error
		dir, err = os.MkdirTemp("", "txconcur-e14-")
		if err != nil {
			return nil, fmt.Errorf("bench: tempdir: %w", err)
		}
		defer os.RemoveAll(dir)
		d, err = wal.Open(wal.OS{}, dir, wal.SyncEachRecord)
		if err != nil {
			return nil, err
		}
		ckpt = d.Checkpointer(every)
	}

	hotCap := w.blockTxs / 8
	if hotCap < 8 {
		hotCap = 8
	}
	pool := mempool.New(16 * w.blockTxs)
	cfg := mempool.BuilderConfig{
		Packer:   mempool.ConflictAware{},
		Pack:     mempool.PackConfig{MaxTxs: w.blockTxs, HotKeyCap: hotCap},
		Coinbase: types.AddressFromUint64("recovery/miner", 1),
		// Durable clients hold their next submission until the previous
		// one is fsynced, so the pool rarely fills a MaxTxs block; Flush
		// bounds how long a closing block waits for stragglers.
		Flush: 2 * time.Millisecond,
	}
	if durable {
		cfg.Log = d.Log()
	}
	builder := mempool.NewBuilder(pool, w.pre, cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bench: listen: %w", err)
	}
	handler := client.NewBuilderServer(pool)
	if durable {
		handler = client.NewDurableBuilderServer(pool)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	out := make(chan mempool.BuiltBlock, 16)
	var leftovers []*mempool.Pending
	var runErr error
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		leftovers, runErr = builder.Run(ctx, out)
	}()

	var mu sync.Mutex
	var built []*account.Block
	blkCh := make(chan *account.Block)
	go func() {
		defer close(blkCh)
		for bb := range out {
			mu.Lock()
			built = append(built, bb.Block)
			mu.Unlock()
			select {
			case blkCh <- bb.Block:
			case <-ctx.Done():
				return
			}
		}
	}()

	const nClients = 6
	url := "http://" + ln.Addr().String()
	start := time.Now()
	var samples []time.Duration
	errCh := make(chan error, nClients)
	var wg sync.WaitGroup
	for g := 0; g < nClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := &client.Submitter{Collector: client.Collector{URL: url, MaxRetries: 2}}
			var mine []time.Duration
			for i := range w.subs {
				if clientFor(w.subs[i].From, nClients) != g {
					continue
				}
				st := time.Now()
				if err := sub.Submit(ctx, w.subs[i]); err != nil {
					errCh <- fmt.Errorf("bench: client %d: %w", g, err)
					return
				}
				mine = append(mine, time.Since(st))
			}
			mu.Lock()
			samples = append(samples, mine...)
			mu.Unlock()
		}(g)
	}
	go func() {
		wg.Wait()
		pool.Close()
	}()

	eng := exec.Sharded{Workers: workers, Shards: shards, Depth: 2}
	if durable && every > 0 {
		eng.Checkpoint = ckpt
	}
	cr, css, err := eng.ExecuteChainStream(w.pre.Copy(), blkCh, nil)
	wall := time.Since(start)
	<-runDone
	select {
	case cerr := <-errCh:
		return nil, cerr
	default:
	}
	if err != nil {
		return nil, fmt.Errorf("bench: %s every=%d stream: %w", w.name, every, err)
	}
	if runErr != nil {
		return nil, fmt.Errorf("bench: %s every=%d builder: %w", w.name, every, runErr)
	}
	if len(leftovers) != 0 {
		return nil, fmt.Errorf("bench: %s every=%d: %d transactions left unpackable", w.name, every, len(leftovers))
	}

	// Verify the live run against the sequential replay of the chain the
	// builder emitted — a durability overhead number for a chain with a
	// wrong root would be a measurement of nothing.
	total := 0
	for _, b := range built {
		total += len(b.Txs)
	}
	if total != len(w.subs) {
		return nil, fmt.Errorf("bench: %s every=%d: committed %d of %d submissions", w.name, every, total, len(w.subs))
	}
	_, oracles, _, seqRoot, err := replayChain(w.name, w.pre, built)
	if err != nil {
		return nil, err
	}
	if err := verifyChainRoot(fmt.Sprintf("bench: %s every=%d: streamed", w.name, every), cr.Root, seqRoot); err != nil {
		return nil, err
	}
	for i := range built {
		if err := traceReceiptsMatch(cr.Receipts[i], oracles[i]); err != nil {
			return nil, fmt.Errorf("bench: %s every=%d block %d: %w", w.name, every, i, err)
		}
	}

	res := &recoveryResult{
		txs: total, blocks: len(built),
		lat: mempool.Latencies(samples), wall: wall,
	}
	if !durable {
		return res, nil
	}
	if err := ckpt.Err(); err != nil {
		return nil, fmt.Errorf("bench: %s every=%d checkpoint: %w", w.name, every, err)
	}
	res.ckpts = ckpt.Written()
	res.skipped = css.CheckpointsSkipped
	if err := d.Close(); err != nil {
		return nil, err
	}

	// Cold restart: reopen the durability directory, recover (latest valid
	// checkpoint + sharded replay of the log suffix), and time it. The
	// recovered root must match the root the uninterrupted run committed.
	rt := time.Now()
	d2, err := wal.Open(wal.OS{}, dir, wal.SyncEachRecord)
	if err != nil {
		return nil, err
	}
	defer d2.Close()
	rec, err := d2.Recover(w.pre)
	if err != nil {
		return nil, err
	}
	rst, err := rec.State.Materialize()
	if err != nil {
		return nil, fmt.Errorf("bench: %s every=%d materialize: %w", w.name, every, err)
	}
	root := rst.Root()
	if len(rec.Blocks) > 0 {
		rr, _, err := exec.Sharded{Workers: workers, Shards: shards, Depth: 2}.ExecuteChain(rst, rec.Blocks)
		if err != nil {
			return nil, fmt.Errorf("bench: %s every=%d recovery replay: %w", w.name, every, err)
		}
		root = rr.Root
	}
	res.recovery = time.Since(rt)
	res.replayed = len(rec.Blocks)
	if err := verifyChainRoot(fmt.Sprintf("bench: %s every=%d: recovered", w.name, every), root, cr.Root); err != nil {
		return nil, err
	}
	if got := len(d2.Records()); got != len(built) {
		return nil, fmt.Errorf("bench: %s every=%d: log holds %d blocks, run built %d", w.name, every, got, len(built))
	}
	return res, nil
}

// RecoveryComparison is experiment E14: the price and the payoff of the
// crash-safe durability layer, end to end. Every row is a full service run
// — HTTP submission clients, bounded mempool, block builder, sharded
// streaming executor — differing only in the durability configuration: the
// in-memory control (acks mean admission; the latency floor), the WAL with
// no checkpoints (acks mean fsynced; recovery replays the whole log), and
// the WAL with async state checkpoints every 2/4/8 blocks (recovery
// replays only the suffix past the newest checkpoint). The table reports
// the commit-path overhead as the client-observed submit → ack p50/p99 and
// throughput, and the payoff as the timed cold recovery (reopen + latest
// checkpoint + suffix replay), with every live and recovered root verified
// against the sequential replay. Checkpoints the async worker skipped
// (enqueue found it busy) are reported too: they cost replay on recovery,
// never commit-path latency.
func RecoveryComparison(seed int64, workers, shards int) (Table, error) {
	t := Table{
		Name: "recovery",
		Title: fmt.Sprintf("E14: durable commit overhead vs recovery time, by checkpoint interval (%d workers, %d shards)",
			workers, shards),
		Headers: []string{
			"Durability", "Ckpt every", "Txs", "Blocks", "Ckpts", "Skipped",
			"Ack p50", "Ack p99", "tx/s", "Replayed", "Recovery",
		},
	}
	w, err := recoveryStream(seed)
	if err != nil {
		return t, err
	}
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	rows := []struct {
		mode  string
		every int
	}{
		{"memory", -1},
		{"wal", 0},
		{"wal+ckpt", 2},
		{"wal+ckpt", 4},
		{"wal+ckpt", 8},
	}
	for _, row := range rows {
		r, err := runRecovery(w, row.every, workers, shards)
		if err != nil {
			return t, err
		}
		everyCol, replayCol, recCol := "-", "-", "-"
		if row.every >= 0 {
			everyCol = fmt.Sprintf("%d", row.every)
			replayCol = fmt.Sprintf("%d", r.replayed)
			recCol = ms(r.recovery)
		}
		t.Rows = append(t.Rows, []string{
			row.mode,
			everyCol,
			fmt.Sprintf("%d", r.txs),
			fmt.Sprintf("%d", r.blocks),
			fmt.Sprintf("%d", r.ckpts),
			fmt.Sprintf("%d", r.skipped),
			ms(r.lat.P50),
			ms(r.lat.P99),
			fmt.Sprintf("%.0f", float64(r.txs)/r.wall.Seconds()),
			replayCol,
			recCol,
		})
	}
	return t, nil
}
