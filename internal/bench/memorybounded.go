package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/basestore"
	"txconcur/internal/chainsim"
	"txconcur/internal/exec"
	"txconcur/internal/mempool"
	"txconcur/internal/types"
)

// memoryBoundedUsers is the E15 account population. The bounded rows cap
// the per-shard version cache at users/10 and users/100 keys, so the state
// is 10× and 100× the cache budget — the regime the disk-backed base layer
// exists for.
const memoryBoundedUsers = 8000

// memoryBoundedChain is the E15 workload: a wide account population with a
// skewed active set, so the version caches keep faulting different cold
// accounts while a hot core stays resident. Wide and shallow — the cost
// being priced is cache churn, not chain length.
func memoryBoundedChain(seed int64) (*account.StateDB, []*account.Block, error) {
	p := chainsim.Profile{
		Name: "Memory Bounded", Model: chainsim.Account, Consensus: "PoW",
		DataSource: "Synthetic", LaunchYear: 2020,
		Eras: []chainsim.Era{
			{Name: "wide", Weight: 1, StartTime: 1577836800, BlockInterval: 15,
				TxPerBlock: 150, TxPerBlockJitter: 0.3, Users: memoryBoundedUsers,
				ActiveFrac: 2.5, HotSenderFrac: 0.6, HotSenders: 4},
		},
	}
	return chainsim.GenerateAccountChain(p, 12, seed)
}

// timedBackend decorates the production base store with cold-read latency
// sampling: every Get that the store answers (a read the version cache had
// evicted) is timed, so the table can report the tail price of a cache
// miss that goes to disk.
type timedBackend struct {
	s *basestore.Store

	mu   sync.Mutex
	cold []time.Duration
}

func (b *timedBackend) Get(key []byte) ([]byte, bool, error) {
	start := time.Now()
	v, ok, err := b.s.Get(key)
	if ok && err == nil {
		d := time.Since(start)
		b.mu.Lock()
		b.cold = append(b.cold, d)
		b.mu.Unlock()
	}
	return v, ok, err
}

func (b *timedBackend) Apply(entries []basestore.Entry) error { return b.s.Apply(entries) }

func (b *timedBackend) Range(fn func(key string, val []byte) bool) error { return b.s.Range(fn) }

func (b *timedBackend) coldLatencies() mempool.LatencyStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return mempool.Latencies(b.cold)
}

// memoryBoundedResult is one chain run under a cache budget (or the all-RAM
// control).
type memoryBoundedResult struct {
	txs, blocks int
	wall        time.Duration
	evicted     int
	coldReads   int
	coldLat     mempool.LatencyStats
	gens        int // base-store table generations left on disk
	baseKeys    int // distinct keys resident in the base store
}

// runMemoryBounded executes the chain once under the given total cache
// budget (split evenly across the shards' version caches), against a real
// basestore.Store on the OS filesystem. budget < 0 runs the all-RAM
// control (no backend). The result root and every receipt are verified
// against the sequential oracle before any number is reported.
func runMemoryBounded(pre *account.StateDB, blocks []*account.Block,
	oracles [][]*account.Receipt, seqRoot types.Hash, workers, shards, budget int) (*memoryBoundedResult, error) {

	eng := exec.Sharded{Workers: workers, Shards: shards, Depth: 2}
	var tb *timedBackend
	if budget >= 0 {
		dir, err := os.MkdirTemp("", "txconcur-e15-")
		if err != nil {
			return nil, fmt.Errorf("bench: tempdir: %w", err)
		}
		defer os.RemoveAll(dir)
		store, err := basestore.OpenStore(basestore.OS{}, dir)
		if err != nil {
			return nil, err
		}
		defer store.Close()
		tb = &timedBackend{s: store}
		eng.Backend = tb
		eng.CacheBudget = budget / shards
	}

	start := time.Now()
	cr, css, err := eng.ExecuteChain(pre.Copy(), blocks)
	wall := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("bench: memorybounded budget=%d: %w", budget, err)
	}

	ctx := fmt.Sprintf("bench: memorybounded budget=%d", budget)
	if err := verifyChainRoot(ctx, cr.Root, seqRoot); err != nil {
		return nil, err
	}
	if err := verifyChainReceipts(ctx, cr.Receipts, oracles); err != nil {
		return nil, err
	}

	total := 0
	for _, b := range blocks {
		total += len(b.Txs)
	}
	res := &memoryBoundedResult{
		txs: total, blocks: len(blocks), wall: wall,
		evicted: css.Evicted, coldReads: css.ColdReads,
	}
	if tb != nil {
		if budget > 0 && res.evicted == 0 {
			return nil, fmt.Errorf("%s: bounded run evicted nothing — the budget never bound", ctx)
		}
		res.coldLat = tb.coldLatencies()
		stats := tb.s.Stats()
		res.gens = stats.Generations
		res.baseKeys = stats.IndexedKeys
	}
	return res, nil
}

// MemoryBoundedComparison is experiment E15: the price of bounding the
// version caches to a fraction of the state, with evicted keys persisted
// to a disk-backed base layer and cache misses reading back through it.
// Every row runs the same wide-state chain on the sharded executor; the
// control keeps all state in RAM (the historical behaviour), the bounded
// rows cap each shard's cache at 1/10 and 1/100 of the account population
// — state 10× and 100× the budget — against a real table store on the OS
// filesystem. The table reports throughput against the all-RAM control,
// the eviction and cold-read volume, the cold-read latency tail (the time
// a cache miss spends in the base store, CRC check and all), and what the
// base layer holds at the end. Every row's root and receipts are verified
// against the sequential replay before it is recorded.
func MemoryBoundedComparison(seed int64, workers, shards int) (Table, error) {
	t := Table{
		Name: "memorybounded",
		Title: fmt.Sprintf("E15: memory-bounded state backend vs all-RAM control (%d accounts, %d workers, %d shards)",
			memoryBoundedUsers, workers, shards),
		Headers: []string{
			"Cache budget", "State/budget", "Txs", "Blocks", "tx/s", "vs RAM",
			"Evicted", "Cold reads", "Cold p50", "Cold p99", "Base gens", "Base keys",
		},
	}
	pre, blocks, err := memoryBoundedChain(seed)
	if err != nil {
		return t, err
	}
	_, oracles, _, seqRoot, err := replayChain("memorybounded", pre, blocks)
	if err != nil {
		return t, err
	}
	us := func(d time.Duration) string {
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
	rows := []struct {
		label  string
		budget int
	}{
		{"unbounded", -1},
		{"users/10", memoryBoundedUsers / 10},
		{"users/100", memoryBoundedUsers / 100},
	}
	var ramRate float64
	for _, row := range rows {
		r, err := runMemoryBounded(pre, blocks, oracles, seqRoot, workers, shards, row.budget)
		if err != nil {
			return t, err
		}
		rate := float64(r.txs) / r.wall.Seconds()
		if row.budget < 0 {
			ramRate = rate
		}
		ratioCol, p50Col, p99Col, gensCol, keysCol := "-", "-", "-", "-", "-"
		if row.budget >= 0 {
			ratioCol = fmt.Sprintf("%dx", memoryBoundedUsers/row.budget)
			p50Col = us(r.coldLat.P50)
			p99Col = us(r.coldLat.P99)
			gensCol = fmt.Sprintf("%d", r.gens)
			keysCol = fmt.Sprintf("%d", r.baseKeys)
		}
		t.Rows = append(t.Rows, []string{
			row.label,
			ratioCol,
			fmt.Sprintf("%d", r.txs),
			fmt.Sprintf("%d", r.blocks),
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.2fx", rate/ramRate),
			fmt.Sprintf("%d", r.evicted),
			fmt.Sprintf("%d", r.coldReads),
			p50Col,
			p99Col,
			gensCol,
			keysCol,
		})
	}
	return t, nil
}
