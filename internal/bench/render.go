package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// RenderTable writes a table as aligned text.
func RenderTable(w io.Writer, t Table) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(t.Title + "\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderFigure writes a figure as text: one sparkline per series with its
// value range and time span, the terminal stand-in for the paper's plots.
func RenderFigure(w io.Writer, f Figure) error {
	var sb strings.Builder
	sb.WriteString(f.Title + "\n")
	for _, p := range f.Panels {
		sb.WriteString("  " + p.Title + "\n")
		nameWidth := 0
		for _, s := range p.Series {
			if len(s.Name) > nameWidth {
				nameWidth = len(s.Name)
			}
		}
		for _, s := range p.Series {
			sb.WriteString(fmt.Sprintf("    %-*s %s\n", nameWidth, s.Name, sparkline(s, p.LogY)))
		}
		if len(p.Series) > 0 && len(p.Series[0].Times) > 0 {
			first := p.Series[0].Times[0]
			last := p.Series[0].Times[len(p.Series[0].Times)-1]
			sb.WriteString(fmt.Sprintf("    %-*s %s .. %s\n", nameWidth, "span",
				time.Unix(first, 0).UTC().Format("2006-01"),
				time.Unix(last, 0).UTC().Format("2006-01")))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// sparkline renders one series with unicode block characters, optionally on
// a log scale.
func sparkline(s Series, logY bool) string {
	if len(s.Values) == 0 {
		return "(no data)"
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	transform := func(v float64) float64 {
		if logY {
			if v < 1 {
				v = 1
			}
			return math.Log10(v)
		}
		return v
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s.Values {
		tv := transform(v)
		if tv < lo {
			lo = tv
		}
		if tv > hi {
			hi = tv
		}
	}
	var sb strings.Builder
	for _, v := range s.Values {
		idx := 0
		if hi > lo {
			idx = int((transform(v) - lo) / (hi - lo) * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		sb.WriteRune(levels[idx])
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return fmt.Sprintf("%s [%.3g .. %.3g]", sb.String(), min, max)
}
