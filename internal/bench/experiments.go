package bench

import (
	"fmt"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/exec"
	"txconcur/internal/heat"
	"txconcur/internal/sched"
	"txconcur/internal/types"
	"txconcur/internal/utxo"
)

// acctBlocks generates `blocks` Ethereum-like blocks with their pre-states
// and receipts, for the executor experiments.
type preparedBlock struct {
	pre      *account.StateDB
	blk      *account.Block
	receipts []*account.Receipt
}

func prepareAccountBlocks(profile string, blocks int, seed int64) ([]preparedBlock, error) {
	p, ok := chainsim.ProfileByName(profile)
	if !ok {
		return nil, fmt.Errorf("bench: unknown chain %q", profile)
	}
	g, err := chainsim.NewAcctGen(p, blocks, seed)
	if err != nil {
		return nil, err
	}
	var out []preparedBlock
	for {
		pre := g.Chain().State().Copy()
		blk, receipts, ok, err := g.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, preparedBlock{pre: pre, blk: blk, receipts: receipts})
	}
	return out, nil
}

// ExecutorComparison is experiment E1: run the real execution engines on
// generated Ethereum-like blocks and compare the measured unit-cost
// speed-ups against the paper's analytical predictions, per core count.
// This is the validation of §V that the paper's §VII names as future work.
func ExecutorComparison(blocks int, seed int64, cores []int) (Table, error) {
	prepared, err := prepareAccountBlocks("Ethereum", blocks, seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Name:  "exec",
		Title: "E1: measured executor speed-ups vs analytical model (Ethereum workload, unit-cost)",
		Headers: []string{
			"Cores", "Spec measured", "Eq.(1) predicted", "Perfect measured", "Perfect predicted",
			"Group measured", "Eq.(2) predicted", "STM measured", "Spec binned", "STM retries",
		},
	}
	for _, n := range cores {
		var specSum, perfSum, grpSum, stmSum, eq1Sum, eqPerfSum, eq2Sum float64
		var binned, retries, counted int
		for bi, pb := range prepared {
			if len(pb.blk.Txs) == 0 {
				continue
			}
			m := core.MeasureAccountBlock(pb.blk, pb.receipts)
			seq, err := exec.Sequential(pb.pre.Copy(), pb.blk)
			if err != nil {
				return t, fmt.Errorf("sequential replay block %d: %w", bi, err)
			}

			spec, err := exec.Speculative{Workers: n}.Execute(pb.pre.Copy(), pb.blk)
			if err != nil {
				return t, fmt.Errorf("speculative n=%d: %w", n, err)
			}
			perf, err := exec.PerfectSpeculative{Workers: n, Receipts: pb.receipts}.Execute(pb.pre.Copy(), pb.blk)
			if err != nil {
				return t, fmt.Errorf("perfect n=%d: %w", n, err)
			}
			grp, err := exec.Grouped{Workers: n, Receipts: pb.receipts}.Execute(pb.pre.Copy(), pb.blk)
			if err != nil {
				return t, fmt.Errorf("grouped n=%d: %w", n, err)
			}
			stm, err := exec.STMExec{Workers: n}.Execute(pb.pre.Copy(), pb.blk)
			if err != nil {
				return t, fmt.Errorf("stm n=%d: %w", n, err)
			}
			for _, er := range []struct {
				name string
				res  *exec.Result
			}{{"speculative", spec}, {"perfect", perf}, {"grouped", grp}, {"stm", stm}} {
				if err := verifyBlockRoot(fmt.Sprintf("%s n=%d", er.name, n), bi, er.res.Root, seq.Root); err != nil {
					return t, err
				}
			}
			eq1, err := core.SpeculativeSpeedupExact(m.NumTxs, m.SingleRate(), n)
			if err != nil {
				return t, err
			}
			eqPerf, err := core.PerfectInfoSpeedup(m.NumTxs, m.SingleRate(), n, 0)
			if err != nil {
				return t, err
			}
			eq2, err := core.GroupSpeedup(n, m.GroupRate())
			if err != nil {
				return t, err
			}

			specSum += spec.Stats.Speedup
			perfSum += perf.Stats.Speedup
			grpSum += grp.Stats.Speedup
			stmSum += stm.Stats.Speedup
			eq1Sum += eq1
			eqPerfSum += eqPerf
			eq2Sum += eq2
			binned += spec.Stats.Conflicted
			retries += stm.Stats.Retries
			counted++
		}
		if counted == 0 {
			continue
		}
		c := float64(counted)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2fx", specSum/c),
			fmt.Sprintf("%.2fx", eq1Sum/c),
			fmt.Sprintf("%.2fx", perfSum/c),
			fmt.Sprintf("%.2fx", eqPerfSum/c),
			fmt.Sprintf("%.2fx", grpSum/c),
			fmt.Sprintf("%.2fx", eq2Sum/c),
			fmt.Sprintf("%.2fx", stmSum/c),
			fmt.Sprintf("%d", binned),
			fmt.Sprintf("%d", retries),
		})
	}
	return t, nil
}

// prepareChain generates a history for the profile and returns the state
// before the first block plus the block sequence — the whole-chain inputs
// the pipelined engines consume. Unlike prepareAccountBlocks, the receipts
// and per-block pre-states are *not* taken from the generator: the
// generator injects era contracts directly into state between blocks, so
// chain-level engines use a sequential replay of the blocks themselves as
// ground truth (chainsim.GenerateAccountChain documents the contract).
func prepareChain(profile string, blocks int, seed int64) (*account.StateDB, []*account.Block, error) {
	p, ok := chainsim.ProfileByName(profile)
	if !ok {
		return nil, nil, fmt.Errorf("bench: unknown chain %q", profile)
	}
	return chainsim.GenerateAccountChain(p, blocks, seed)
}

// replayChain runs the sequential ground truth over a prepared chain:
// each block's pre-state, oracle receipts, and post-root, plus the final
// chain root every engine must reproduce.
func replayChain(profile string, pre *account.StateDB, blks []*account.Block) (
	pres []*account.StateDB, oracles [][]*account.Receipt, roots []types.Hash, seqRoot types.Hash, err error) {
	work := pre.Copy()
	pres = make([]*account.StateDB, len(blks))
	oracles = make([][]*account.Receipt, len(blks))
	roots = make([]types.Hash, len(blks))
	for i, blk := range blks {
		pres[i] = work.Copy()
		res, rerr := exec.Sequential(work, blk)
		if rerr != nil {
			return nil, nil, nil, seqRoot, fmt.Errorf("%s replay block %d: %w", profile, i, rerr)
		}
		oracles[i] = res.Receipts
		roots[i] = res.Root
	}
	return pres, oracles, roots, work.Root(), nil
}

// PipelineComparison is experiment E7: chain-level speed-ups of the four
// execution engines — serial baseline, ordered STM, oracle-TDG groups, and
// the mvstore-backed two-phase pipeline — over whole generated histories.
// The per-block engines cannot overlap consecutive blocks, so their chain
// speed-up is ΣT / ΣT′ over blocks; the pipeline's is ΣT over its
// two-stage flow-shop makespan, which overlaps validation of block b with
// execution of block b+1. This is the experiment where the speed-up is no
// longer bounded by a single global commit lock; every engine's final root
// is checked against the sequential replay.
func PipelineComparison(blocks int, seed int64, profiles []string, cores []int) (Table, error) {
	t := Table{
		Name:  "pipeline",
		Title: "E7: chain-level engine speed-ups (serial baseline = 1.00x, unit-cost and gas)",
		Headers: []string{
			"Chain", "Cores", "STM", "Oracle TDG", "Pipeline", "Pipeline (gas)", "Reexec", "Mean lag",
		},
	}
	for _, profile := range profiles {
		pre, blks, err := prepareChain(profile, blocks, seed)
		if err != nil {
			return t, err
		}
		// Sequential replay: ground truth root, per-block pre-states and
		// receipts for the per-block engines.
		pres, oracles, roots, seqRoot, err := replayChain(profile, pre, blks)
		if err != nil {
			return t, err
		}

		for _, n := range cores {
			var stmSeq, stmPar, grpSeq, grpPar int
			for i, blk := range blks {
				stm, err := exec.STMExec{Workers: n}.Execute(pres[i].Copy(), blk)
				if err != nil {
					return t, fmt.Errorf("%s stm n=%d: %w", profile, n, err)
				}
				if err := verifyBlockRoot(fmt.Sprintf("%s stm n=%d", profile, n), i, stm.Root, roots[i]); err != nil {
					return t, err
				}
				grp, err := exec.Grouped{Workers: n, Receipts: oracles[i]}.Execute(pres[i].Copy(), blk)
				if err != nil {
					return t, fmt.Errorf("%s grouped n=%d: %w", profile, n, err)
				}
				if err := verifyBlockRoot(fmt.Sprintf("%s grouped n=%d", profile, n), i, grp.Root, roots[i]); err != nil {
					return t, err
				}
				stmSeq += stm.Stats.SeqUnits
				stmPar += stm.Stats.ParUnits
				grpSeq += grp.Stats.SeqUnits
				grpPar += grp.Stats.ParUnits
			}
			pipe, err := exec.Pipeline{Workers: n, Depth: 2}.ExecuteChain(pre.Copy(), blks)
			if err != nil {
				return t, fmt.Errorf("%s pipeline n=%d: %w", profile, n, err)
			}
			if err := verifyChainRoot(fmt.Sprintf("%s pipeline n=%d", profile, n), pipe.Root, seqRoot); err != nil {
				return t, err
			}
			var lag int
			for _, bs := range pipe.Blocks {
				lag += bs.Lag
			}
			ratio := func(seq, par int) float64 {
				if par <= 0 {
					return 1
				}
				return float64(seq) / float64(par)
			}
			t.Rows = append(t.Rows, []string{
				profile,
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.2fx", ratio(stmSeq, stmPar)),
				fmt.Sprintf("%.2fx", ratio(grpSeq, grpPar)),
				fmt.Sprintf("%.2fx", pipe.Stats.Speedup),
				fmt.Sprintf("%.2fx", pipe.Stats.GasSpeedup),
				fmt.Sprintf("%.1f%%", 100*float64(pipe.Stats.Retries)/float64(max(pipe.Stats.Txs, 1))),
				fmt.Sprintf("%.2f", float64(lag)/float64(max(len(blks), 1))),
			})
		}
	}
	return t, nil
}

// OpLevelComparison is experiment E8: key-level vs operation-level conflict
// analysis and execution on hot-key workloads. The paper's TDG treats any
// two transactions sharing an address as conflicting, so a block of
// deposits to one exchange wallet collapses into a single component and the
// measured speed-up pins at ~1. Operation-level refinement (delta writes;
// Lin et al. 2022, Garamvölgyi et al. 2022) observes that blind balance
// credits commute: the refined TDG drops pure delta–delta edges, and the
// engines record credits as commutative deltas instead of
// read-modify-writes. For each profile the table reports both conflict
// rates and each engine's chain speed-up in "key → op" form; every
// engine run, in both modes, is verified root-for-root against the
// sequential replay. On delta-free workloads (the "Contract Crowd"
// control) the two modes must agree exactly.
func OpLevelComparison(blocks int, seed int64, profiles []string, cores []int) (Table, error) {
	t := Table{
		Name:  "oplevel",
		Title: "E8: key-level vs operation-level (delta-write) conflicts and chain speed-ups",
		Headers: []string{
			"Chain", "Cores", "Single rate", "Group rate", "Spec", "STM", "TDG sched", "Pipeline",
		},
	}
	for _, profile := range profiles {
		pre, blks, err := prepareChain(profile, blocks, seed)
		if err != nil {
			return t, err
		}
		// Sequential replay: ground truth per-block pre-states, receipts and
		// roots.
		pres, oracles, roots, seqRoot, err := replayChain(profile, pre, blks)
		if err != nil {
			return t, err
		}

		// Conflict rates under both TDGs, transaction-weighted across the
		// history.
		var txs, confKey, confOp, lccKey, lccOp float64
		for i, blk := range blks {
			if len(blk.Txs) == 0 {
				continue
			}
			v := core.ViewFromReceipts(blk, oracles[i])
			mk := core.FromTDG(core.BuildAccount(v))
			mo := core.FromTDG(core.BuildAccountRefined(v))
			txs += float64(mk.NumTxs)
			confKey += float64(mk.Conflicted)
			confOp += float64(mo.Conflicted)
			lccKey += float64(mk.LCC)
			lccOp += float64(mo.LCC)
		}
		if txs == 0 {
			continue
		}
		rates := func(key, op float64) string {
			return fmt.Sprintf("%.1f%% -> %.1f%%", 100*key/txs, 100*op/txs)
		}

		for _, n := range cores {
			// Per-block engines, both modes, chain speed-up = ΣT / ΣT'.
			var specPar, stmPar, grpPar [2]int
			var seqUnits int
			for i, blk := range blks {
				seqUnits += len(blk.Txs)
				for mode := 0; mode < 2; mode++ {
					op := mode == 1
					spec, err := exec.Speculative{Workers: n, OpLevel: op}.Execute(pres[i].Copy(), blk)
					if err != nil {
						return t, fmt.Errorf("%s spec op=%v n=%d: %w", profile, op, n, err)
					}
					stm, err := exec.STMExec{Workers: n, OpLevel: op}.Execute(pres[i].Copy(), blk)
					if err != nil {
						return t, fmt.Errorf("%s stm op=%v n=%d: %w", profile, op, n, err)
					}
					grp, err := exec.Grouped{Workers: n, Refined: op, Receipts: oracles[i]}.Execute(pres[i].Copy(), blk)
					if err != nil {
						return t, fmt.Errorf("%s grouped refined=%v n=%d: %w", profile, op, n, err)
					}
					for name, res := range map[string]*exec.Result{"spec": spec, "stm": stm, "grouped": grp} {
						if err := verifyBlockRoot(fmt.Sprintf("%s %s op=%v n=%d", profile, name, op, n), i, res.Root, roots[i]); err != nil {
							return t, err
						}
					}
					specPar[mode] += spec.Stats.ParUnits
					stmPar[mode] += stm.Stats.ParUnits
					grpPar[mode] += grp.Stats.ParUnits
				}
			}
			// The pipelined engine, whole chain, both modes. FixedLag pins
			// the deterministic worst-case snapshot so the two modes see
			// identical schedules and the comparison is noise-free.
			var pipeSpeed [2]float64
			for mode := 0; mode < 2; mode++ {
				op := mode == 1
				pipe, err := exec.Pipeline{Workers: n, Depth: 2, OpLevel: op, FixedLag: true}.ExecuteChain(pre.Copy(), blks)
				if err != nil {
					return t, fmt.Errorf("%s pipeline op=%v n=%d: %w", profile, op, n, err)
				}
				if err := verifyChainRoot(fmt.Sprintf("%s pipeline op=%v n=%d", profile, op, n), pipe.Root, seqRoot); err != nil {
					return t, err
				}
				pipeSpeed[mode] = pipe.Stats.Speedup
			}
			ratio := func(par int) float64 {
				if par <= 0 {
					return 1
				}
				return float64(seqUnits) / float64(par)
			}
			pair := func(key, op float64) string { return fmt.Sprintf("%.2fx -> %.2fx", key, op) }
			t.Rows = append(t.Rows, []string{
				profile,
				fmt.Sprintf("%d", n),
				rates(confKey, confOp),
				rates(lccKey, lccOp),
				pair(ratio(specPar[0]), ratio(specPar[1])),
				pair(ratio(stmPar[0]), ratio(stmPar[1])),
				pair(ratio(grpPar[0]), ratio(grpPar[1])),
				pair(pipeSpeed[0], pipeSpeed[1]),
			})
		}
	}
	return t, nil
}

// OpLevelProfiles are the workloads E8 runs by default: three hot-key
// stress profiles where operation-level refinement should win, plus the
// delta-free control where it must change nothing.
func OpLevelProfiles() []string {
	return []string{"Token Hot-Key", "Hot Wallet", "Flash Crowd", "Contract Crowd"}
}

// ShardingComparison is experiment E9: the sharded execution engine
// (exec.Sharded) on the cross-shard stress workloads, per shard count. The
// paper's §II-B notes that Zilliqa-style sharding "does not support
// cross-shard transactions"; E6 (ShardingAnalysis) measures how many
// transactions that design forfeits, and E9 measures what *handling* them
// costs: chain speed-up over the sequential baseline (unit-cost, ΣT/ΣT′)
// and the cross-shard abort rate (staged results that failed validation
// and re-executed in the sequential merge), in key-level and
// operation-level mode. Every engine run, in both modes and at every shard
// count, is verified root-for-root against the sequential replay.
func ShardingComparison(blocks int, seed int64, profiles []string, shardCounts []int, workers int) (Table, error) {
	t := Table{
		Name: "shardingexec",
		Title: fmt.Sprintf(
			"E9: sharded execution — speed-up and cross-shard abort rate vs shard count (%d workers, key-level -> op-level)",
			workers),
		Headers: []string{
			"Chain", "Shards", "Cross", "Speed-up", "Abort rate", "Fallback blocks",
		},
	}
	for _, profile := range profiles {
		pre, blks, err := prepareChain(profile, blocks, seed)
		if err != nil {
			return t, err
		}
		pres, _, roots, _, err := replayChain(profile, pre, blks)
		if err != nil {
			return t, err
		}
		for _, shards := range shardCounts {
			// Per mode: ΣT, ΣT′, cross/abort/fallback counters.
			var seqUnits int
			var par, crossTx, aborts, fallbacks [2]int
			for i, blk := range blks {
				seqUnits += len(blk.Txs)
				for mode := 0; mode < 2; mode++ {
					op := mode == 1
					res, ss, err := exec.Sharded{Workers: workers, Shards: shards, OpLevel: op}.
						ExecuteSharded(pres[i].Copy(), blk)
					if err != nil {
						return t, fmt.Errorf("%s sharded s=%d op=%v block %d: %w", profile, shards, op, i, err)
					}
					if err := verifyBlockRoot(fmt.Sprintf("%s sharded s=%d op=%v", profile, shards, op), i, res.Root, roots[i]); err != nil {
						return t, err
					}
					par[mode] += res.Stats.ParUnits
					crossTx[mode] += ss.Cross
					aborts[mode] += ss.CrossAborts
					if ss.Fallback {
						fallbacks[mode]++
					}
				}
			}
			if seqUnits == 0 {
				continue
			}
			ratio := func(p int) float64 {
				if p <= 0 {
					return 1
				}
				return float64(seqUnits) / float64(p)
			}
			rate := func(part, whole int) float64 {
				if whole == 0 {
					return 0
				}
				return 100 * float64(part) / float64(whole)
			}
			t.Rows = append(t.Rows, []string{
				profile,
				fmt.Sprintf("%d", shards),
				fmt.Sprintf("%.1f%% -> %.1f%%", rate(crossTx[0], seqUnits), rate(crossTx[1], seqUnits)),
				fmt.Sprintf("%.2fx -> %.2fx", ratio(par[0]), ratio(par[1])),
				fmt.Sprintf("%.1f%% -> %.1f%%", rate(aborts[0], max(crossTx[0], 1)), rate(aborts[1], max(crossTx[1], 1))),
				fmt.Sprintf("%d -> %d", fallbacks[0], fallbacks[1]),
			})
		}
	}
	return t, nil
}

// ShardProfileNames are the workloads E9 runs by default: uniform
// cross-shard traffic, a skewed hot shard, and contract-heavy cross-shard
// tangles.
func ShardProfileNames() []string {
	return []string{"Shard Uniform", "Shard Hot-Shard", "Shard Cross-Heavy"}
}

// ShardedPipelineComparison is experiment E10: per-block sharded execution
// vs the pipelined sharded chain (exec.Sharded.ExecuteChain), per shard
// count, on the cross-shard stress workloads. The per-block engine ends
// every block on the cross-shard merge barrier; the pipelined engine
// overlaps the per-shard speculative phase 1 of block b+1 with the merge of
// block b, batches commuting staged groups, re-executes aborted cross-shard
// transactions in parallel waves, and repairs ordering overlaps per
// transaction instead of falling back to a sequential whole-block re-run —
// E10 measures what each of those buys. Speed-ups are chain-level over the
// sequential baseline (unit-cost), reported as "key-level -> op-level";
// every run, in both modes and at every shard count, is verified
// root-for-root (and receipt-for-receipt for the chain engine) against the
// sequential replay.
func ShardedPipelineComparison(blocks int, seed int64, profiles []string, shardCounts []int, workers int) (Table, error) {
	t := Table{
		Name: "shardedpipeline",
		Title: fmt.Sprintf(
			"E10: pipelined sharded execution — per-block vs pipelined chain (%d workers, key-level -> op-level)",
			workers),
		Headers: []string{
			"Chain", "Shards", "Per-block", "Pipelined", "Abort rate", "Merge units", "Repairs", "Fallback blocks",
		},
	}
	for _, profile := range profiles {
		pre, blks, err := prepareChain(profile, blocks, seed)
		if err != nil {
			return t, err
		}
		pres, oracles, roots, seqRoot, err := replayChain(profile, pre, blks)
		if err != nil {
			return t, err
		}
		for _, shards := range shardCounts {
			var seqUnits int
			var blockPar, chainPar, crossTx, aborts, mergeUnits, repairs, fallbacks [2]int
			for mode := 0; mode < 2; mode++ {
				op := mode == 1
				for i, blk := range blks {
					if mode == 0 {
						seqUnits += len(blk.Txs)
					}
					res, _, err := exec.Sharded{Workers: workers, Shards: shards, OpLevel: op}.
						ExecuteSharded(pres[i].Copy(), blk)
					if err != nil {
						return t, fmt.Errorf("%s sharded s=%d op=%v block %d: %w", profile, shards, op, i, err)
					}
					if err := verifyBlockRoot(fmt.Sprintf("%s sharded s=%d op=%v", profile, shards, op), i, res.Root, roots[i]); err != nil {
						return t, err
					}
					blockPar[mode] += res.Stats.ParUnits
				}
				cr, css, err := exec.Sharded{Workers: workers, Shards: shards, OpLevel: op, Depth: 2}.
					ExecuteChain(pre.Copy(), blks)
				if err != nil {
					return t, fmt.Errorf("%s sharded chain s=%d op=%v: %w", profile, shards, op, err)
				}
				ctx := fmt.Sprintf("%s sharded chain s=%d op=%v", profile, shards, op)
				if err := verifyChainRoot(ctx, cr.Root, seqRoot); err != nil {
					return t, err
				}
				if err := verifyChainReceipts(ctx, cr.Receipts, oracles); err != nil {
					return t, err
				}
				chainPar[mode] += cr.Stats.ParUnits
				crossTx[mode] += css.Cross
				aborts[mode] += css.CrossAborts
				mergeUnits[mode] += css.MergeUnits
				repairs[mode] += css.Repairs
				fallbacks[mode] += css.FallbackBlocks
			}
			if seqUnits == 0 {
				continue
			}
			ratio := func(p int) float64 {
				if p <= 0 {
					return 1
				}
				return float64(seqUnits) / float64(p)
			}
			rate := func(part, whole int) float64 {
				if whole == 0 {
					return 0
				}
				return 100 * float64(part) / float64(whole)
			}
			t.Rows = append(t.Rows, []string{
				profile,
				fmt.Sprintf("%d", shards),
				fmt.Sprintf("%.2fx -> %.2fx", ratio(blockPar[0]), ratio(blockPar[1])),
				fmt.Sprintf("%.2fx -> %.2fx", ratio(chainPar[0]), ratio(chainPar[1])),
				fmt.Sprintf("%.1f%% -> %.1f%%", rate(aborts[0], max(crossTx[0], 1)), rate(aborts[1], max(crossTx[1], 1))),
				// Merge units vs aborts: the strictly sequential merge costs
				// one unit per abort; the wave'd merge costs the left number.
				fmt.Sprintf("%d/%d -> %d/%d", mergeUnits[0], aborts[0], mergeUnits[1], aborts[1]),
				fmt.Sprintf("%d -> %d", repairs[0], repairs[1]),
				fmt.Sprintf("%d -> %d", fallbacks[0], fallbacks[1]),
			})
		}
	}
	return t, nil
}

// AdaptiveShardingComparison is experiment E11: static FNV-1a shard
// assignment vs the adaptive conflict-heat assignment (core.ShardMap /
// internal/heat), on the placement stress workloads, per shard count. The
// static engine pays the cross-shard merge for every transaction whose
// sender and receiver hash to different committees — forever, because
// nothing ever moves. The adaptive engine learns per-address access and
// conflict heat across blocks (exponential decay), clusters addresses that
// keep being serialised together, and co-locates each cluster at epoch
// boundaries, migrating the moved state between the per-shard stores; the
// same heat signal orders the merge's re-execution waves so hot
// communities lead waves instead of riding on stale predictions. The table
// reports both engines' chain speed-up and cross-shard abort rate
// ("static -> adaptive", key-level and op-level) plus the adaptive run's
// migration bill (keys copied, schedule units charged, rebalance epochs).
// "Shard Uniform" rides along as the no-structure control: nothing is
// placeable there, so the adaptive column prices the pure epoch-barrier
// tax. Every run, in both modes and at every shard count, is verified
// root-for-root (and receipt-for-receipt for the adaptive runs) against
// the sequential replay.
func AdaptiveShardingComparison(blocks int, seed int64, profiles []string, shardCounts []int,
	workers, rebalanceEvery int) (Table, error) {
	t := Table{
		Name: "adaptiveshard",
		Title: fmt.Sprintf(
			"E11: adaptive conflict-heat shard assignment — static -> adaptive (%d workers, rebalance every %d blocks)",
			workers, rebalanceEvery),
		Headers: []string{
			"Chain", "Shards", "Speed-up (key)", "Speed-up (op)", "Abort (key)", "Abort (op)",
			"Migrated", "Mig units", "Epochs",
		},
	}
	for _, profile := range profiles {
		pre, blks, err := prepareChain(profile, blocks, seed)
		if err != nil {
			return t, err
		}
		_, oracles, _, seqRoot, err := replayChain(profile, pre, blks)
		if err != nil {
			return t, err
		}
		var seqUnits int
		for _, blk := range blks {
			seqUnits += len(blk.Txs)
		}
		for _, shards := range shardCounts {
			// [mode][0]=static, [mode][1]=adaptive. The migration bill is
			// per mode too: op-level deltas change which transactions
			// serialise, hence the heat profile and the moves.
			var par, crossTx, aborts [2][2]int
			var migrated, migUnits [2]int
			var epochs int
			for mode := 0; mode < 2; mode++ {
				op := mode == 1
				for variant := 0; variant < 2; variant++ {
					e := exec.Sharded{Workers: workers, Shards: shards, OpLevel: op, Depth: 2}
					if variant == 1 {
						// A fresh map per run: the profile must be learned
						// from this chain alone.
						e.Map = heat.NewAdaptiveMap(shards, nil)
						e.RebalanceEvery = rebalanceEvery
					}
					cr, css, err := e.ExecuteChain(pre.Copy(), blks)
					if err != nil {
						return t, fmt.Errorf("%s s=%d op=%v adaptive=%v: %w", profile, shards, op, variant == 1, err)
					}
					ctx := fmt.Sprintf("%s s=%d op=%v adaptive=%v", profile, shards, op, variant == 1)
					if err := verifyChainRoot(ctx, cr.Root, seqRoot); err != nil {
						return t, err
					}
					if variant == 1 {
						if err := verifyChainReceipts(ctx, cr.Receipts, oracles); err != nil {
							return t, err
						}
						migrated[mode] = css.Migrations
						migUnits[mode] = css.MigrationUnits
						// The epoch count is a function of the block count
						// and cadence alone, identical across modes.
						epochs = css.RebalanceEpochs
					}
					par[mode][variant] += cr.Stats.ParUnits
					crossTx[mode][variant] += css.Cross
					aborts[mode][variant] += css.CrossAborts
				}
			}
			if seqUnits == 0 {
				continue
			}
			ratio := func(p int) float64 {
				if p <= 0 {
					return 1
				}
				return float64(seqUnits) / float64(p)
			}
			rate := func(part, whole int) float64 {
				if whole == 0 {
					return 0
				}
				return 100 * float64(part) / float64(whole)
			}
			pair := func(mode int) string {
				return fmt.Sprintf("%.2fx -> %.2fx", ratio(par[mode][0]), ratio(par[mode][1]))
			}
			abortPair := func(mode int) string {
				return fmt.Sprintf("%.1f%% -> %.1f%%",
					rate(aborts[mode][0], max(crossTx[mode][0], 1)),
					rate(aborts[mode][1], max(crossTx[mode][1], 1)))
			}
			t.Rows = append(t.Rows, []string{
				profile,
				fmt.Sprintf("%d", shards),
				pair(0),
				pair(1),
				abortPair(0),
				abortPair(1),
				fmt.Sprintf("%d -> %d", migrated[0], migrated[1]),
				fmt.Sprintf("%d -> %d", migUnits[0], migUnits[1]),
				fmt.Sprintf("%d", epochs),
			})
		}
	}
	return t, nil
}

// AdaptiveShardProfileNames are the workloads E11 runs by default: a
// stationary consolidation skew (one good placement fixes it), the
// drifting hotspot (placement must be re-learned era after era), and
// uniform traffic as the control that prices the epoch-barrier tax when
// nothing is placeable.
func AdaptiveShardProfileNames() []string {
	return []string{"Shard Skew", "Shard Drift", "Shard Uniform"}
}

// InterBlockConcurrency is experiment E4: the paper's §VII lists
// inter-block concurrency as an unexplored source. Windows of w consecutive
// blocks are analysed as one batch; the table reports how both conflict
// rates and the eq. (2) speed-up bound evolve with the window size, for an
// account chain and a UTXO chain.
func InterBlockConcurrency(blocks int, seed int64, windows []int, cores int) (Table, error) {
	t := Table{
		Name:  "interblock",
		Title: fmt.Sprintf("E4: inter-block windows (batched analysis, %d cores)", cores),
		Headers: []string{
			"Chain", "Window", "Txs/batch", "Single rate", "Group rate", "Eq.(2) bound",
		},
	}

	// Ethereum-like account views.
	prepared, err := prepareAccountBlocks("Ethereum", blocks, seed)
	if err != nil {
		return t, err
	}
	views := make([]*core.AccountBlockView, 0, len(prepared))
	for _, pb := range prepared {
		views = append(views, core.ViewFromReceipts(pb.blk, pb.receipts))
	}
	for _, w := range windows {
		ms := core.WindowMetrics(views, w)
		row, err := interBlockRow("Ethereum", w, ms, cores)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}

	// Bitcoin-like UTXO blocks.
	p, _ := chainsim.ProfileByName("Bitcoin")
	g, err := chainsim.NewUTXOGen(p, blocks, seed)
	if err != nil {
		return t, err
	}
	var ublocks []*utxo.Block
	for {
		blk, ok, err := g.Next()
		if err != nil {
			return t, err
		}
		if !ok {
			break
		}
		ublocks = append(ublocks, blk)
	}
	for _, w := range windows {
		ms := core.WindowMetricsUTXO(ublocks, w)
		row, err := interBlockRow("Bitcoin", w, ms, cores)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// interBlockRow aggregates window metrics (tx-weighted) into one table row.
func interBlockRow(chain string, w int, ms []core.Metrics, cores int) ([]string, error) {
	var txs, conflicted, lcc float64
	var batches int
	var boundSum float64
	for _, m := range ms {
		if m.NumTxs == 0 {
			continue
		}
		txs += float64(m.NumTxs)
		conflicted += float64(m.Conflicted)
		lcc += float64(m.LCC)
		bound, err := core.GroupSpeedup(cores, m.GroupRate())
		if err != nil {
			return nil, err
		}
		boundSum += bound
		batches++
	}
	if batches == 0 {
		return nil, fmt.Errorf("bench: no batches for %s window %d", chain, w)
	}
	return []string{
		chain,
		fmt.Sprintf("%d", w),
		fmt.Sprintf("%.0f", txs/float64(batches)),
		fmt.Sprintf("%.1f%%", 100*conflicted/txs),
		fmt.Sprintf("%.2f%%", 100*lcc/txs),
		fmt.Sprintf("%.2fx", boundSum/float64(batches)),
	}, nil
}

// CensusTable reports the component-size census of generated workloads —
// the decomposition behind the paper's §IV-B observation that group
// concurrency far exceeds single-transaction concurrency: most conflicted
// transactions sit in *small* components that can still run concurrently
// with each other, and only the largest component serialises.
func CensusTable(blocks int, seed int64) (Table, error) {
	t := Table{
		Name:  "census",
		Title: "Component-size census (share of transactions per component class)",
		Headers: []string{
			"Chain", "Singleton", "Small (2-5)", "Medium (6-20)", "Large (>20)",
		},
	}
	addRow := func(chain string, total ComponentTotals) {
		sum := float64(total.TxsSingleton + total.TxsSmall + total.TxsMedium + total.TxsLarge)
		if sum == 0 {
			return
		}
		pct := func(v int) string { return fmt.Sprintf("%.1f%%", 100*float64(v)/sum) }
		t.Rows = append(t.Rows, []string{
			chain, pct(total.TxsSingleton), pct(total.TxsSmall), pct(total.TxsMedium), pct(total.TxsLarge),
		})
	}

	prepared, err := prepareAccountBlocks("Ethereum", blocks, seed)
	if err != nil {
		return t, err
	}
	var ethTotal core.ComponentCensus
	for _, pb := range prepared {
		v := core.ViewFromReceipts(pb.blk, pb.receipts)
		c := core.BuildAccount(v).Census()
		ethTotal.Add(c)
	}
	addRow("Ethereum", ComponentTotals(ethTotal))

	p, _ := chainsim.ProfileByName("Bitcoin")
	g, err := chainsim.NewUTXOGen(p, blocks, seed)
	if err != nil {
		return t, err
	}
	var btcTotal core.ComponentCensus
	for {
		blk, ok, err := g.Next()
		if err != nil {
			return t, err
		}
		if !ok {
			break
		}
		btcTotal.Add(core.BuildUTXO(blk).Census())
	}
	addRow("Bitcoin", ComponentTotals(btcTotal))
	return t, nil
}

// ComponentTotals aliases the census for table rendering.
type ComponentTotals = core.ComponentCensus

// ShardingAnalysis is experiment E6: Zilliqa-style sender-based sharding
// applied to the generated workloads (paper §II-B). For each committee
// count it reports the cross-shard transaction fraction — the transactions
// Zilliqa's design cannot process ("a major limitation ... is that it does
// not support cross-shard transactions") — and the intra-shard conflict
// rates of the remainder.
func ShardingAnalysis(blocks int, seed int64, shardCounts []int) (Table, error) {
	t := Table{
		Name:  "sharding",
		Title: "E6: Zilliqa-style sender sharding (cross-shard loss vs intra-shard concurrency)",
		Headers: []string{
			"Chain", "Shards", "Cross-shard", "Intra single rate", "Intra group rate",
		},
	}
	for _, chain := range []string{"Zilliqa", "Ethereum"} {
		prepared, err := prepareAccountBlocks(chain, blocks, seed)
		if err != nil {
			return t, err
		}
		for _, n := range shardCounts {
			var txs, cross, conflicted, lcc float64
			for _, pb := range prepared {
				v := core.ViewFromReceipts(pb.blk, pb.receipts)
				rep := core.ShardAccountView(v, core.InternalEdgesByTx(pb.receipts), n)
				txs += float64(rep.Txs)
				cross += float64(rep.CrossShard)
				intra := rep.IntraShardMetrics()
				conflicted += float64(intra.Conflicted)
				lcc += float64(intra.LCC)
			}
			if txs == 0 {
				continue
			}
			intraTxs := txs - cross
			singleRate, groupRate := 0.0, 0.0
			if intraTxs > 0 {
				singleRate = conflicted / intraTxs
				groupRate = lcc / intraTxs
			}
			t.Rows = append(t.Rows, []string{
				chain,
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.1f%%", 100*cross/txs),
				fmt.Sprintf("%.1f%%", 100*singleRate),
				fmt.Sprintf("%.2f%%", 100*groupRate),
			})
		}
	}
	return t, nil
}

// UTXOValidation is experiment E5: the UTXO-side counterpart of E1. The
// paper's Bitcoin finding — group conflict rate around 1% — implies
// near-linear parallel validation speed-ups; this experiment measures them
// with the GroupedUTXO engine and compares against eq. (2).
func UTXOValidation(blocks int, seed int64, cores []int) (Table, error) {
	p, _ := chainsim.ProfileByName("Bitcoin")
	g, err := chainsim.NewUTXOGen(p, blocks, seed)
	if err != nil {
		return Table{}, err
	}
	type prepared struct {
		pre *utxo.Set
		blk *utxo.Block
	}
	var items []prepared
	for {
		pre := g.Chain().UTXOSet().Clone()
		blk, ok, err := g.Next()
		if err != nil {
			return Table{}, err
		}
		if !ok {
			break
		}
		items = append(items, prepared{pre: pre, blk: blk})
	}

	t := Table{
		Name:  "utxoexec",
		Title: "E5: parallel UTXO block validation vs eq. (2) (Bitcoin workload, unit-cost)",
		Headers: []string{
			"Cores", "Measured", "Eq.(2) predicted", "Mean txs/block", "Mean conflicted",
		},
	}
	for _, n := range cores {
		var measured, predicted, txs, conflicted float64
		counted := 0
		for _, it := range items {
			m := core.MeasureUTXOBlock(it.blk)
			if m.NumTxs == 0 {
				continue
			}
			set := it.pre.Clone()
			res, err := (exec.GroupedUTXO{Workers: n, Subsidy: 1 << 50}).Execute(set, it.blk)
			if err != nil {
				return t, fmt.Errorf("utxo n=%d: %w", n, err)
			}
			eq2, err := core.GroupSpeedup(n, m.GroupRate())
			if err != nil {
				return t, err
			}
			measured += res.Stats.Speedup
			predicted += eq2
			txs += float64(m.NumTxs)
			conflicted += float64(m.Conflicted)
			counted++
		}
		if counted == 0 {
			continue
		}
		c := float64(counted)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2fx", measured/c),
			fmt.Sprintf("%.2fx", predicted/c),
			fmt.Sprintf("%.0f", txs/c),
			fmt.Sprintf("%.0f", conflicted/c),
		})
	}
	return t, nil
}

// SchedulingQuality is experiment E2: how close LPT list scheduling gets to
// the paper's min(n, 1/l) approximation (equation (2)) on the component-size
// distributions of generated blocks — the paper's §V-B calls exact
// scheduling NP-hard and "leaves the evaluation of this in practice to
// future work".
func SchedulingQuality(blocks int, seed int64, cores []int) (Table, error) {
	prepared, err := prepareAccountBlocks("Ethereum", blocks, seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Name:  "sched",
		Title: "E2: LPT schedule quality vs the min(n, 1/l) bound (Ethereum workload)",
		Headers: []string{
			"Cores", "Mean LPT speed-up", "Mean bound", "LPT/bound", "Worst ratio",
		},
	}
	for _, n := range cores {
		var lptSum, boundSum float64
		worst := 1.0
		counted := 0
		for _, pb := range prepared {
			v := core.ViewFromReceipts(pb.blk, pb.receipts)
			groups := core.BuildAccount(v).TxGroups()
			if len(groups) == 0 {
				continue
			}
			jobs := make([]int, len(groups))
			for i, g := range groups {
				jobs[i] = len(g)
			}
			schedule, err := sched.LPT(jobs, n)
			if err != nil {
				return t, err
			}
			bound := sched.ModelSpeedup(jobs, n)
			lpt := schedule.Speedup()
			lptSum += lpt
			boundSum += bound
			if ratio := lpt / bound; ratio < worst {
				worst = ratio
			}
			counted++
		}
		if counted == 0 {
			continue
		}
		c := float64(counted)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3fx", lptSum/c),
			fmt.Sprintf("%.3fx", boundSum/c),
			fmt.Sprintf("%.4f", (lptSum/c)/(boundSum/c)),
			fmt.Sprintf("%.4f", worst),
		})
	}
	return t, nil
}

// ApproxTDGEffectiveness is experiment E3: the paper's §V-C proposes
// building an approximate TDG from regular transactions only (internal
// transactions are unknown a priori) and leaves quantifying it to future
// work. This experiment measures (a) how closely the approximate TDG's
// conflict metrics track the full TDG's, and (b) how often hidden conflicts
// force the grouped executor's sequential fallback, with the resulting
// speed-up cost.
func ApproxTDGEffectiveness(blocks int, seed int64, workers int) (Table, error) {
	prepared, err := prepareAccountBlocks("Ethereum", blocks, seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Name:  "approxtdg",
		Title: fmt.Sprintf("E3: approximate-TDG effectiveness (%d workers)", workers),
		Headers: []string{
			"Metric", "Value",
		},
	}
	var fullSingle, apxSingle, fullGroup, apxGroup float64
	var oracleSpeed, apxSpeed float64
	fallbacks, counted := 0, 0
	for _, pb := range prepared {
		if len(pb.blk.Txs) == 0 {
			continue
		}
		v := core.ViewFromReceipts(pb.blk, pb.receipts)
		full := core.FromTDG(core.BuildAccount(v))
		apx := core.FromTDG(core.BuildAccountApprox(v))
		fullSingle += full.SingleRate()
		apxSingle += apx.SingleRate()
		fullGroup += full.GroupRate()
		apxGroup += apx.GroupRate()

		oracle, err := exec.Grouped{Workers: workers, Receipts: pb.receipts}.Execute(pb.pre.Copy(), pb.blk)
		if err != nil {
			return t, err
		}
		approx, err := exec.Grouped{Workers: workers, Approx: true, Receipts: pb.receipts}.Execute(pb.pre.Copy(), pb.blk)
		if err != nil {
			return t, err
		}
		oracleSpeed += oracle.Stats.Speedup
		apxSpeed += approx.Stats.Speedup
		if approx.Stats.Retries > 0 {
			fallbacks++
		}
		counted++
	}
	if counted == 0 {
		return t, fmt.Errorf("bench: no blocks generated")
	}
	c := float64(counted)
	t.Rows = [][]string{
		{"Blocks", fmt.Sprintf("%d", counted)},
		{"Mean single rate (full TDG)", fmt.Sprintf("%.3f", fullSingle/c)},
		{"Mean single rate (approx TDG)", fmt.Sprintf("%.3f", apxSingle/c)},
		{"Mean group rate (full TDG)", fmt.Sprintf("%.3f", fullGroup/c)},
		{"Mean group rate (approx TDG)", fmt.Sprintf("%.3f", apxGroup/c)},
		{"Mean speed-up (oracle TDG)", fmt.Sprintf("%.2fx", oracleSpeed/c)},
		{"Mean speed-up (approx TDG, incl. fallbacks)", fmt.Sprintf("%.2fx", apxSpeed/c)},
		{"Blocks hitting sequential fallback", fmt.Sprintf("%d (%.1f%%)", fallbacks, 100*float64(fallbacks)/c)},
	}
	return t, nil
}
