// Oracle verification helpers shared by every comparison driver. A
// measured speed-up is meaningless if the engine silently computed a
// different state, so each E* table builder must route its results through
// these before a row is recorded — the benchverify analyzer in tools/lint
// enforces that every exported *Comparison driver reaches one of them.
package bench

import (
	"fmt"

	"txconcur/internal/account"
	"txconcur/internal/types"
)

// verifyBlockRoot checks a per-block engine's post-state root against the
// sequential replay root of the same block. context names the engine and
// its parameters for the error message.
func verifyBlockRoot(context string, block int, got, want types.Hash) error {
	if got != want {
		return fmt.Errorf("%s block %d: root diverged from sequential replay", context, block)
	}
	return nil
}

// verifyChainRoot checks a chain-level engine's final root against the
// sequential replay of the whole history.
func verifyChainRoot(context string, got, want types.Hash) error {
	if got != want {
		return fmt.Errorf("%s: root diverged from sequential replay", context)
	}
	return nil
}

// verifyChainReceipts checks a chain-level engine's per-block receipts
// against the sequential oracles, block by block.
func verifyChainReceipts(context string, got, want [][]*account.Receipt) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: receipts for %d blocks, want %d", context, len(got), len(want))
	}
	for i := range want {
		if err := traceReceiptsMatch(got[i], want[i]); err != nil {
			return fmt.Errorf("%s block %d: %w", context, i, err)
		}
	}
	return nil
}
