package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sync"
	"time"

	"txconcur/internal/account"
	"txconcur/internal/chainsim"
	"txconcur/internal/client"
	"txconcur/internal/dataset"
	"txconcur/internal/exec"
	"txconcur/internal/mempool"
	"txconcur/internal/types"
)

// streamWorkload is one E13 load: a pre-state, the submission stream in
// arrival order (wire form, predictions attached), the target block size,
// and the cost model pricing the resulting schedules.
type streamWorkload struct {
	name     string
	pre      *account.StateDB
	subs     []client.SubmitTx
	blockTxs int
	cost     exec.CostModel
}

// streamResult is one end-to-end service run's outcome.
type streamResult struct {
	txs, blocks, deferred int
	stats                 exec.Stats
	lat                   mempool.LatencyStats
	wall                  time.Duration
}

// shardSkewStream flattens a generated Shard Skew history into a
// submission stream: arrival order is the chain's sequential order (so
// every cross-sender funding dependency is satisfiable), predictions are
// the plain-transfer envelope sets.
func shardSkewStream(seed int64) (*streamWorkload, error) {
	pre, blks, err := chainsim.GenerateAccountChain(chainsim.ShardSkewProfile(), 8, seed)
	if err != nil {
		return nil, err
	}
	w := &streamWorkload{name: "shard-skew", pre: pre}
	total := 0
	for _, b := range blks {
		total += len(b.Txs)
		for _, tx := range b.Txs {
			p := mempool.PredictTransfer(tx)
			w.subs = append(w.subs, client.SubmitTx{
				From: tx.From, To: tx.To, Value: tx.Value, Nonce: tx.Nonce,
				GasLimit: tx.GasLimit, GasPrice: tx.GasPrice, Arg: tx.Arg, Code: tx.Code,
				Reads: p.Reads, Writes: p.Writes, Deltas: p.Deltas,
			})
		}
	}
	w.blockTxs = total / len(blks)
	return w, nil
}

// erc20Stream compiles a generated ERC20 rwset trace and turns its rows
// into submissions whose predictions are the recorded per-row key sets —
// the case where the conflict-aware packer sees the real conflict
// structure (hot token balances, DEX pools) rather than just envelopes.
func erc20Stream(seed int64) (*streamWorkload, error) {
	tr, err := dataset.GenerateERC20Trace(dataset.ERC20TraceConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	rc, err := dataset.BuildReplayChain(tr)
	if err != nil {
		return nil, err
	}
	w := &streamWorkload{name: "erc20-trace", pre: rc.Pre, cost: rc.TxCost}
	var flat []*account.Transaction
	for _, b := range rc.Blocks {
		flat = append(flat, b.Txs...)
	}
	if len(flat) != len(tr.Txs) {
		return nil, fmt.Errorf("bench: trace rows (%d) != replay txs (%d)", len(tr.Txs), len(flat))
	}
	for i, tx := range flat {
		row := &tr.Txs[i]
		s := client.SubmitTx{
			From: tx.From, To: tx.To, Value: tx.Value, Nonce: tx.Nonce,
			GasLimit: tx.GasLimit, GasPrice: tx.GasPrice, Arg: tx.Arg,
		}
		// The sender envelope (balance, nonce) is read-written by every
		// transaction; the row's declared ops carry the contract keys.
		env := "sender:" + row.Sender
		s.Reads = append(s.Reads, env)
		s.Writes = append(s.Writes, env)
		for _, op := range row.Ops {
			switch op.Kind {
			case dataset.OpRead:
				s.Reads = append(s.Reads, op.Key)
			case dataset.OpWrite:
				s.Writes = append(s.Writes, op.Key)
			case dataset.OpDelta:
				s.Deltas = append(s.Deltas, op.Key)
			}
		}
		w.subs = append(w.subs, s)
	}
	w.blockTxs = len(rc.Blocks[0].Txs)
	return w, nil
}

// clientFor deals senders to client goroutines: every transaction of one
// sender goes through one client, preserving its nonce order on the wire.
func clientFor(from types.Address, n int) int {
	h := fnv.New32a()
	h.Write(from[:])
	return int(h.Sum32() % uint32(n))
}

// runStreaming performs one full service run: an HTTP JSON-RPC submission
// server over a bounded pool, concurrent simulated clients, the block
// builder with the given packer, and the sharded streaming executor —
// then verifies the whole run against the sequential replay of the built
// chain and computes submit → committed latencies.
func runStreaming(w *streamWorkload, packer mempool.Packer, op bool, workers, shards int) (*streamResult, error) {
	// A cap near blockTxs/8 spreads the hottest keys over ~an extra block
	// without shrinking blocks so much that pipeline width is lost (the
	// regime a cap sweep found best for both workloads).
	hotCap := w.blockTxs / 8
	if hotCap < 8 {
		hotCap = 8
	}
	pool := mempool.New(16 * w.blockTxs)
	builder := mempool.NewBuilder(pool, w.pre, mempool.BuilderConfig{
		Packer:   packer,
		Pack:     mempool.PackConfig{MaxTxs: w.blockTxs, HotKeyCap: hotCap},
		Coinbase: types.AddressFromUint64("stream/miner", 1),
		Flush:    2 * time.Millisecond,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bench: listen: %w", err)
	}
	srv := &http.Server{Handler: client.NewBuilderServer(pool)}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	out := make(chan mempool.BuiltBlock, 16)
	var leftovers []*mempool.Pending
	var runErr error
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		leftovers, runErr = builder.Run(ctx, out)
	}()

	// Bridge built blocks into the streaming executor, keeping the
	// latency bookkeeping (submit stamps per block, commit stamps per
	// block) under one lock shared with the executor's commit callback.
	var mu sync.Mutex
	var built []*account.Block
	var submitted [][]time.Time
	var commits []time.Time
	deferred := 0
	blkCh := make(chan *account.Block)
	go func() {
		defer close(blkCh)
		for bb := range out {
			mu.Lock()
			built = append(built, bb.Block)
			submitted = append(submitted, bb.Submitted)
			deferred += bb.Deferred
			mu.Unlock()
			select {
			case blkCh <- bb.Block:
			case <-ctx.Done():
				return
			}
		}
	}()

	const nClients = 6
	url := "http://" + ln.Addr().String()
	start := time.Now()
	errCh := make(chan error, nClients)
	var wg sync.WaitGroup
	for g := 0; g < nClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := &client.Submitter{Collector: client.Collector{URL: url, MaxRetries: 2}}
			for i := range w.subs {
				if clientFor(w.subs[i].From, nClients) != g {
					continue
				}
				if err := sub.Submit(ctx, w.subs[i]); err != nil {
					errCh <- fmt.Errorf("bench: client %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	go func() {
		wg.Wait()
		pool.Close()
	}()

	eng := exec.Sharded{Workers: workers, Shards: shards, OpLevel: op, Depth: 2, Cost: w.cost}
	cr, _, err := eng.ExecuteChainStream(w.pre.Copy(), blkCh,
		func(idx int, blk *account.Block, receipts []*account.Receipt) {
			mu.Lock()
			commits = append(commits, time.Now())
			mu.Unlock()
		})
	wall := time.Since(start)
	<-runDone
	select {
	case cerr := <-errCh:
		return nil, cerr
	default:
	}
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s stream: %w", w.name, packer.Name(), err)
	}
	if runErr != nil {
		return nil, fmt.Errorf("bench: %s/%s builder: %w", w.name, packer.Name(), runErr)
	}
	if len(leftovers) != 0 {
		return nil, fmt.Errorf("bench: %s/%s: %d transactions left unpackable", w.name, packer.Name(), len(leftovers))
	}

	// Verify the streamed chain root-for-root and receipt-for-receipt
	// against the sequential replay of the blocks the builder emitted.
	total := 0
	for _, b := range built {
		total += len(b.Txs)
	}
	if total != len(w.subs) {
		return nil, fmt.Errorf("bench: %s/%s: committed %d of %d submissions", w.name, packer.Name(), total, len(w.subs))
	}
	_, oracles, _, seqRoot, err := replayChain(w.name, w.pre, built)
	if err != nil {
		return nil, err
	}
	if err := verifyChainRoot(fmt.Sprintf("bench: %s/%s: streamed", w.name, packer.Name()), cr.Root, seqRoot); err != nil {
		return nil, err
	}
	for i := range built {
		if err := traceReceiptsMatch(cr.Receipts[i], oracles[i]); err != nil {
			return nil, fmt.Errorf("bench: %s/%s block %d: %w", w.name, packer.Name(), i, err)
		}
	}
	if len(commits) != len(built) {
		return nil, fmt.Errorf("bench: %s/%s: %d commit callbacks for %d blocks", w.name, packer.Name(), len(commits), len(built))
	}

	var samples []time.Duration
	for i, ct := range commits {
		for _, st := range submitted[i] {
			samples = append(samples, ct.Sub(st))
		}
	}
	return &streamResult{
		txs: total, blocks: len(built), deferred: deferred,
		stats: cr.Stats, lat: mempool.Latencies(samples), wall: wall,
	}, nil
}

// StreamingComparison is experiment E13: the streaming block-builder
// service end to end. Simulated clients submit the workload over JSON-RPC
// into a bounded mempool (HTTP-level backpressure); the builder packs
// blocks either FIFO (the arrival-order control) or conflict-aware
// (greedy key-disjoint packing under a hot-key density cap, per-sender
// nonce order preserved); the sharded executor consumes the blocks as
// they close via ExecuteChainStream. Every run is verified against the
// sequential replay of the chain the builder actually emitted, and the
// table reports, per workload × packer × conflict mode, the cost-weighted
// speed-up, the conflict count, and the service-level numbers the batch
// experiments cannot see: submit → committed p50/p99 latency and
// end-to-end throughput.
func StreamingComparison(seed int64, workers, shards int) (Table, error) {
	t := Table{
		Name: "streaming",
		Title: fmt.Sprintf("E13: streaming builder, FIFO vs conflict-aware packing (%d workers, %d shards)",
			workers, shards),
		Headers: []string{
			"Workload", "Packer", "Mode", "Txs", "Blocks", "Deferred",
			"Speed-up (cost)", "Conflicted", "p50", "p99", "tx/s",
		},
	}
	skew, err := shardSkewStream(seed)
	if err != nil {
		return t, err
	}
	erc, err := erc20Stream(seed)
	if err != nil {
		return t, err
	}
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	for _, w := range []*streamWorkload{skew, erc} {
		for _, packer := range []mempool.Packer{mempool.FIFO{}, mempool.ConflictAware{}} {
			for _, op := range []bool{false, true} {
				mode := "key"
				if op {
					mode = "op"
				}
				r, err := runStreaming(w, packer, op, workers, shards)
				if err != nil {
					return t, err
				}
				speedup := 1.0
				if r.stats.GasPar > 0 {
					speedup = float64(r.stats.GasSeq) / float64(r.stats.GasPar)
				}
				t.Rows = append(t.Rows, []string{
					w.name,
					packer.Name(),
					mode,
					fmt.Sprintf("%d", r.txs),
					fmt.Sprintf("%d", r.blocks),
					fmt.Sprintf("%d", r.deferred),
					fmt.Sprintf("%.2fx", speedup),
					fmt.Sprintf("%d", r.stats.Conflicted),
					ms(r.lat.P50),
					ms(r.lat.P99),
					fmt.Sprintf("%.0f", float64(r.txs)/r.wall.Seconds()),
				})
			}
		}
	}
	return t, nil
}
