package bench

import (
	"fmt"
	"strings"
	"testing"
)

// smallRunner returns a runner sized for fast tests.
func smallRunner() *Runner { return NewRunner(30, 10, 7) }

func TestTableI(t *testing.T) {
	tbl := TableI()
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tbl.Rows))
	}
	// Spot-check against the paper's Table I.
	want := map[string][2]string{
		"Bitcoin":          {"UTXO", "No"},
		"Ethereum":         {"Account", "Yes"},
		"Zilliqa":          {"Account", "Yes"},
		"Bitcoin Cash":     {"UTXO", "No"},
		"Litecoin":         {"UTXO", "No"},
		"Dogecoin":         {"UTXO", "No"},
		"Ethereum Classic": {"Account", "Yes"},
	}
	for _, row := range tbl.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Fatalf("unexpected chain %q", row[0])
		}
		if row[1] != w[0] || row[3] != w[1] {
			t.Fatalf("%s: model/contracts = %s/%s, want %s/%s", row[0], row[1], row[3], w[0], w[1])
		}
	}
	// Zilliqa uses a custom client, everything else BigQuery (Table I
	// "data source" column).
	for _, row := range tbl.Rows {
		if row[0] == "Zilliqa" && row[4] == "BigQuery" {
			t.Fatal("Zilliqa data source should not be BigQuery")
		}
	}
}

func TestFig1Table(t *testing.T) {
	tbl := Fig1()
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The published rates must appear verbatim.
	if tbl.Rows[0][5] != "40.00%" || tbl.Rows[0][6] != "40.00%" {
		t.Fatalf("fig1a rates = %v", tbl.Rows[0])
	}
	if tbl.Rows[1][5] != "87.50%" || tbl.Rows[1][6] != "56.25%" {
		t.Fatalf("fig1b rates = %v", tbl.Rows[1])
	}
}

func TestRunnerFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("generates histories")
	}
	r := smallRunner()

	fig4, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4.Panels) != 3 {
		t.Fatalf("fig4 panels = %d", len(fig4.Panels))
	}
	// Panel (b): both weightings present; conflict rates in [0,1];
	// gas-weighted should sit at or below tx-weighted on average (the
	// paper's observation for Ethereum).
	var txW, gasW float64
	for _, s := range fig4.Panels[1].Series {
		mean := 0.0
		for _, v := range s.Values {
			if v < 0 || v > 1 {
				t.Fatalf("rate out of range: %v", v)
			}
			mean += v
		}
		mean /= float64(len(s.Values))
		switch s.Name {
		case "#TX-weighted":
			txW = mean
		case "gas-weighted":
			gasW = mean
		}
	}
	if gasW >= txW {
		t.Errorf("gas-weighted single rate %.3f should be below tx-weighted %.3f", gasW, txW)
	}

	fig5, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// Bitcoin input TXOs exceed transactions (Figure 5a).
	txs := fig5.Panels[0].Series[0]
	inputs := fig5.Panels[0].Series[1]
	var sumTx, sumIn float64
	for i := range txs.Values {
		sumTx += txs.Values[i]
		sumIn += inputs.Values[i]
	}
	if sumIn <= sumTx {
		t.Errorf("inputs (%.0f) should exceed transactions (%.0f)", sumIn, sumTx)
	}

	fig7, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Panels) != 4 {
		t.Fatalf("fig7 panels = %d", len(fig7.Panels))
	}
	if len(fig7.Panels[0].Series) != 3 || len(fig7.Panels[1].Series) != 4 {
		t.Fatalf("fig7 series split wrong")
	}

	fig8, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	fig9, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig8.Panels) != 3 || len(fig9.Panels) != 3 {
		t.Fatal("pair figures need 3 panels")
	}

	fig10, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig10.Panels) != 2 {
		t.Fatalf("fig10 panels = %d", len(fig10.Panels))
	}
	// The paper's headline: group speed-ups reach far beyond the
	// single-transaction ones (up to ~5-6x at 8 cores for group vs 1-2x
	// speculative).
	maxOf := func(p Panel) float64 {
		max := 0.0
		for _, s := range p.Series {
			for _, v := range s.Values {
				if v > max {
					max = v
				}
			}
		}
		return max
	}
	if maxOf(fig10.Panels[1]) <= maxOf(fig10.Panels[0]) {
		t.Errorf("group speed-ups (%.2f) should exceed speculative ones (%.2f)",
			maxOf(fig10.Panels[1]), maxOf(fig10.Panels[0]))
	}
	if maxOf(fig10.Panels[1]) < 3 {
		t.Errorf("max group speed-up %.2f too low (paper: up to 6x at 8 cores)", maxOf(fig10.Panels[1]))
	}

	fig6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6.Rows) == 0 {
		t.Fatal("fig6 has no rows")
	}

	sum, err := r.SummaryTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 7 {
		t.Fatalf("summary rows = %d", len(sum.Rows))
	}
}

func TestRunnerUnknownChain(t *testing.T) {
	r := smallRunner()
	if _, err := r.History("Solana"); err == nil {
		t.Fatal("unknown chain accepted")
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(5, 5, 1)
	h1, err := r.History("Dogecoin")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.History("Dogecoin")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("history not cached")
	}
}

func TestExecutorComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	tbl, err := ExecutorComparison(6, 3, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Headers) {
			t.Fatalf("row width mismatch: %v", row)
		}
	}
}

func TestSchedulingQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("runs scheduler")
	}
	tbl, err := SchedulingQuality(6, 3, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestApproxTDGEffectiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	tbl, err := ApproxTDGEffectiveness(6, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestInterBlockConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("generates histories")
	}
	tbl, err := InterBlockConcurrency(8, 3, []int{1, 2, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 chains x 3 windows)", len(tbl.Rows))
	}
	// Row order: Ethereum windows then Bitcoin windows; batch sizes grow
	// with the window.
	if tbl.Rows[0][0] != "Ethereum" || tbl.Rows[3][0] != "Bitcoin" {
		t.Fatalf("row order: %v", tbl.Rows)
	}
}

func TestCensusTable(t *testing.T) {
	if testing.Short() {
		t.Skip("generates histories")
	}
	tbl, err := CensusTable(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	// The paper's ordering: Bitcoin overwhelmingly singleton, Ethereum
	// spread across classes.
	if tbl.Rows[0][0] != "Ethereum" || tbl.Rows[1][0] != "Bitcoin" {
		t.Fatalf("row order: %v", tbl.Rows)
	}
}

func TestShardingAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("generates histories")
	}
	tbl, err := ShardingAnalysis(6, 3, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 chains x 2 shard counts)", len(tbl.Rows))
	}
}

func TestUTXOValidationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	tbl, err := UTXOValidation(5, 3, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestRendering(t *testing.T) {
	var sb strings.Builder
	if err := RenderTable(&sb, TableI()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Bitcoin") || !strings.Contains(out, "Zilliqa") {
		t.Fatalf("table render missing rows:\n%s", out)
	}

	fig := Figure{
		Title: "test figure",
		Panels: []Panel{{
			Title: "panel",
			Series: []Series{
				{Name: "s1", Times: []int64{0, 1}, Values: []float64{1, 2}},
				{Name: "empty"},
			},
		}},
	}
	sb.Reset()
	if err := RenderFigure(&sb, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "s1") || !strings.Contains(sb.String(), "(no data)") {
		t.Fatalf("figure render wrong:\n%s", sb.String())
	}
}

// TestOpLevelComparison enforces E8's headline property: on hot-key
// profiles every engine's measured speed-up is strictly higher under
// operation-level refinement than under the key-level TDG, and on the
// delta-free control profile the two modes report identical results.
// (Root equality against the sequential replay is asserted inside
// OpLevelComparison itself.)
func TestOpLevelComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	tbl, err := OpLevelComparison(5, 3, OpLevelProfiles(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	parsePair := func(cell string) (key, op float64) {
		if _, err := fmt.Sscanf(cell, "%fx -> %fx", &key, &op); err != nil {
			t.Fatalf("unparseable speed-up cell %q: %v", cell, err)
		}
		return key, op
	}
	for _, row := range tbl.Rows {
		chain := row[0]
		for col := 4; col < len(row); col++ {
			key, op := parsePair(row[col])
			engine := tbl.Headers[col]
			switch chain {
			case "Contract Crowd":
				if key != op {
					t.Errorf("%s/%s: delta-free profile diverged: %s", chain, engine, row[col])
				}
			default:
				if op <= key {
					t.Errorf("%s/%s: op-level %v not strictly above key-level %v", chain, engine, op, key)
				}
			}
		}
	}
}

// TestShardingComparison runs E9 at test scale: the sharded engine must
// beat the sequential baseline in operation-level mode on every cross-shard
// profile and shard count, and on the skewed hot shard the commutative
// cross-shard merge must beat the key-level one. (Root equality against the
// sequential replay is asserted inside ShardingComparison itself.)
func TestShardingComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("runs executors")
	}
	tbl, err := ShardingComparison(5, 3, ShardProfileNames(), []int{1, 2, 4, 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		chain, shards := row[0], row[1]
		var key, op float64
		if _, err := fmt.Sscanf(row[3], "%fx -> %fx", &key, &op); err != nil {
			t.Fatalf("unparseable speed-up cell %q: %v", row[3], err)
		}
		if op <= 1 {
			t.Errorf("%s shards=%s: op-level speed-up %.2f not above sequential baseline", chain, shards, op)
		}
		if chain == "Shard Hot-Shard" && shards != "1" && op <= key {
			t.Errorf("%s shards=%s: op-level %.2f not above key-level %.2f on the hot shard", chain, shards, op, key)
		}
		// A single shard has no cross-shard transactions by construction.
		if shards == "1" && row[2] != "0.0% -> 0.0%" {
			t.Errorf("%s shards=1: cross rate %q, want zero", chain, row[2])
		}
	}
}
