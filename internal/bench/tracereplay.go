package bench

import (
	"fmt"

	"txconcur/internal/account"
	"txconcur/internal/dataset"
	"txconcur/internal/exec"
	"txconcur/internal/heat"
)

// traceRun accumulates one engine's schedule accounting across a replayed
// chain, in one conflict mode.
type traceRun struct {
	par        int
	gasSeq     uint64
	gasPar     uint64
	conflicted int
}

func (r *traceRun) add(s exec.Stats) {
	r.par += s.ParUnits
	r.gasSeq += s.GasSeq
	r.gasPar += s.GasPar
	r.conflicted += s.Conflicted
}

// traceReceiptsMatch compares an engine's receipts against the sequential
// oracle for one block.
func traceReceiptsMatch(got, want []*account.Receipt) error {
	if len(got) != len(want) {
		return fmt.Errorf("receipt count %d != %d", len(got), len(want))
	}
	for j, r := range got {
		w := want[j]
		if r == nil || w == nil {
			return fmt.Errorf("receipt %d missing", j)
		}
		if r.Status != w.Status || r.GasUsed != w.GasUsed || r.TxHash != w.TxHash {
			return fmt.Errorf("receipt %d diverged", j)
		}
	}
	return nil
}

// TraceReplayComparison is experiment E12: real-conflict trace replay.
// Where E7–E11 measure the engines on synthetic chain-simulator
// workloads, E12 feeds them recorded read/write sets — the committed
// golden fixture plus a deterministic ERC20-shaped trace (hot-token
// transfers, airdrop fan-outs, DEX pool contention, cold payments) from
// dataset.GenerateERC20Trace. Each trace is compiled by
// dataset.BuildReplayChain into VM-executable blocks whose storage
// accesses reproduce the trace's conflict structure exactly, and replayed
// through every engine: per-block Speculative, STM and Sharded, plus the
// chain-level Pipeline, static Sharded and adaptive (conflict-heat)
// Sharded. Every run, in both key-level and op-level mode, is verified
// root-for-root and receipt-for-receipt against the sequential replay.
//
// The trace's measured per-transaction costs drive the engines' gas
// accounting through the CostModel hook (exec.Speculative.Cost et al.), so
// the cost-weighted speed-up column prices schedules by what the
// transactions cost on the source chain rather than by the toy VM's gas;
// the driver cross-checks that every engine's GasSeq equals the trace's
// total measured cost.
func TraceReplayComparison(seed int64, workers, shards, depth, rebalanceEvery int) (Table, error) {
	t := Table{
		Name: "tracereplay",
		Title: fmt.Sprintf(
			"E12: rwset trace replay through every engine — key -> op (%d workers, %d shards)",
			workers, shards),
		Headers: []string{
			"Trace", "Engine", "Txs", "Speed-up", "Speed-up (cost)", "Conflicted",
		},
	}

	golden, err := dataset.GoldenTrace()
	if err != nil {
		return t, err
	}
	gen, err := dataset.GenerateERC20Trace(dataset.ERC20TraceConfig{Seed: seed})
	if err != nil {
		return t, err
	}
	traces := []struct {
		name string
		tr   *dataset.Trace
	}{
		{"golden", golden},
		{"erc20-gen", gen},
	}

	engines := []string{"Speculative", "STM", "Sharded/block", "Pipeline", "Sharded chain", "Adaptive chain"}
	for _, tc := range traces {
		rc, err := dataset.BuildReplayChain(tc.tr)
		if err != nil {
			return t, fmt.Errorf("%s: %w", tc.name, err)
		}
		pres, oracles, roots, seqRoot, err := replayChain(tc.name, rc.Pre, rc.Blocks)
		if err != nil {
			return t, err
		}
		var seqUnits int
		var costSeq uint64
		for i, blk := range rc.Blocks {
			seqUnits += len(blk.Txs)
			for j, tx := range blk.Txs {
				costSeq += rc.TxCost(tx, oracles[i][j])
			}
		}

		// runs[engine][mode], mode 0 = key-level, 1 = op-level.
		var runs [6][2]traceRun
		for mode := 0; mode < 2; mode++ {
			op := mode == 1
			perBlock := []struct {
				idx int
				run func(st *account.StateDB, blk *account.Block) (*exec.Result, error)
			}{
				{0, exec.Speculative{Workers: workers, OpLevel: op, Cost: rc.TxCost}.Execute},
				{1, exec.STMExec{Workers: workers, OpLevel: op, Cost: rc.TxCost}.Execute},
				{2, exec.Sharded{Workers: workers, Shards: shards, OpLevel: op, Depth: depth, Cost: rc.TxCost}.Execute},
			}
			for _, pb := range perBlock {
				for i, blk := range rc.Blocks {
					res, err := pb.run(pres[i].Copy(), blk)
					if err != nil {
						return t, fmt.Errorf("%s %s op=%v block %d: %w", tc.name, engines[pb.idx], op, i, err)
					}
					if err := verifyBlockRoot(fmt.Sprintf("%s %s op=%v", tc.name, engines[pb.idx], op), i, res.Root, roots[i]); err != nil {
						return t, err
					}
					if err := traceReceiptsMatch(res.Receipts, oracles[i]); err != nil {
						return t, fmt.Errorf("%s %s op=%v block %d: %w", tc.name, engines[pb.idx], op, i, err)
					}
					runs[pb.idx][mode].add(res.Stats)
				}
			}

			chain := []struct {
				idx int
				run func() (*exec.ChainResult, error)
			}{
				{3, func() (*exec.ChainResult, error) {
					return exec.Pipeline{Workers: workers, Depth: depth, OpLevel: op, Cost: rc.TxCost}.
						ExecuteChain(rc.Pre.Copy(), rc.Blocks)
				}},
				{4, func() (*exec.ChainResult, error) {
					cr, _, err := exec.Sharded{Workers: workers, Shards: shards, OpLevel: op, Depth: depth,
						Cost: rc.TxCost}.ExecuteChain(rc.Pre.Copy(), rc.Blocks)
					return cr, err
				}},
				{5, func() (*exec.ChainResult, error) {
					// A fresh adaptive map per run: the placement must be
					// learned from this trace alone.
					cr, _, err := exec.Sharded{Workers: workers, Shards: shards, OpLevel: op, Depth: depth,
						Cost: rc.TxCost, Map: heat.NewAdaptiveMap(shards, nil),
						RebalanceEvery: rebalanceEvery}.ExecuteChain(rc.Pre.Copy(), rc.Blocks)
					return cr, err
				}},
			}
			for _, ce := range chain {
				cr, err := ce.run()
				if err != nil {
					return t, fmt.Errorf("%s %s op=%v: %w", tc.name, engines[ce.idx], op, err)
				}
				if err := verifyChainRoot(fmt.Sprintf("%s %s op=%v", tc.name, engines[ce.idx], op), cr.Root, seqRoot); err != nil {
					return t, err
				}
				for i := range rc.Blocks {
					if err := traceReceiptsMatch(cr.Receipts[i], oracles[i]); err != nil {
						return t, fmt.Errorf("%s %s op=%v block %d: %w", tc.name, engines[ce.idx], op, i, err)
					}
				}
				runs[ce.idx][mode].add(cr.Stats)
			}
		}

		// The measured-cost plumbing must be loss-free: every engine charges
		// exactly the trace's total cost sequentially, whatever its schedule.
		for ei := range runs {
			for mode := range runs[ei] {
				if got := runs[ei][mode].gasSeq; got != costSeq {
					return t, fmt.Errorf("%s %s op=%v: GasSeq %d != trace cost %d",
						tc.name, engines[ei], mode == 1, got, costSeq)
				}
			}
		}

		ratio := func(num, den float64) float64 {
			if den <= 0 {
				return 1
			}
			return num / den
		}
		for ei, name := range engines {
			key, opr := runs[ei][0], runs[ei][1]
			t.Rows = append(t.Rows, []string{
				tc.name,
				name,
				fmt.Sprintf("%d", seqUnits),
				fmt.Sprintf("%.2fx -> %.2fx",
					ratio(float64(seqUnits), float64(key.par)),
					ratio(float64(seqUnits), float64(opr.par))),
				fmt.Sprintf("%.2fx -> %.2fx",
					ratio(float64(costSeq), float64(key.gasPar)),
					ratio(float64(costSeq), float64(opr.gasPar))),
				fmt.Sprintf("%d -> %d", key.conflicted, opr.conflicted),
			})
		}
	}
	return t, nil
}
