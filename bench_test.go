package txconcur_test

// One benchmark per table and figure of the paper's evaluation, plus the
// extension experiments and micro-benchmarks of the core pipeline. Each
// table/figure benchmark regenerates the experiment end to end (workload
// generation -> execution/measurement -> bucketed series), so -bench=. is a
// complete reproduction run; b.N repetitions use distinct seeds to exercise
// workload variance.

import (
	"fmt"
	"io"
	"testing"

	"txconcur/internal/account"
	"txconcur/internal/bench"
	"txconcur/internal/chainsim"
	"txconcur/internal/core"
	"txconcur/internal/exec"
	"txconcur/internal/heat"
	"txconcur/internal/mvstore"
	"txconcur/internal/sched"
)

// benchScale keeps the full -bench=. run in the minutes range; raise for
// higher-fidelity series.
const (
	benchBlocks  = 60
	benchBuckets = 20
	benchExecBlk = 10
)

func renderAll(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.TableI()
		if len(t.Rows) != 7 {
			b.Fatal("table I must list seven chains")
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Fig1()
		if t.Rows[0][5] != "40.00%" || t.Rows[1][6] != "56.25%" {
			b.Fatal("figure 1 rates drifted from the paper")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(benchBlocks, benchBuckets, int64(2020+i))
		fig, err := r.Fig4()
		renderAll(b, err)
		renderAll(b, bench.RenderFigure(io.Discard, fig))
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(benchBlocks, benchBuckets, int64(2020+i))
		fig, err := r.Fig5()
		renderAll(b, err)
		renderAll(b, bench.RenderFigure(io.Discard, fig))
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(benchBlocks, benchBuckets, int64(2020+i))
		tbl, err := r.Fig6()
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(benchBlocks, benchBuckets, int64(2020+i))
		fig, err := r.Fig7()
		renderAll(b, err)
		renderAll(b, bench.RenderFigure(io.Discard, fig))
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(benchBlocks, benchBuckets, int64(2020+i))
		fig, err := r.Fig8()
		renderAll(b, err)
		renderAll(b, bench.RenderFigure(io.Discard, fig))
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(benchBlocks, benchBuckets, int64(2020+i))
		fig, err := r.Fig9()
		renderAll(b, err)
		renderAll(b, bench.RenderFigure(io.Discard, fig))
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(benchBlocks, benchBuckets, int64(2020+i))
		fig, err := r.Fig10()
		renderAll(b, err)
		renderAll(b, bench.RenderFigure(io.Discard, fig))
	}
}

func BenchmarkExecutors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.ExecutorComparison(benchExecBlk, int64(2020+i), []int{2, 4, 8, 64})
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.SchedulingQuality(benchExecBlk, int64(2020+i), []int{2, 4, 8, 64})
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkApproxTDG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.ApproxTDGEffectiveness(benchExecBlk, int64(2020+i), 8)
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkInterBlock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.InterBlockConcurrency(benchExecBlk, int64(2020+i), []int{1, 2, 4, 8}, 8)
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkUTXOValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.UTXOValidation(benchExecBlk, int64(2020+i), []int{2, 4, 8, 64})
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkOpLevelComparison(b *testing.B) {
	// E8 at benchmark scale; the recorded baseline lives in
	// docs/bench/E8-baseline.json (regenerate with
	// `go run ./cmd/experiments -run oplevel -json`).
	for i := 0; i < b.N; i++ {
		tbl, err := bench.OpLevelComparison(benchExecBlk, int64(2020+i), bench.OpLevelProfiles(), []int{8})
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkShardingComparison(b *testing.B) {
	// E9 at benchmark scale; the recorded baseline lives in
	// docs/bench/E9-baseline.json (regenerate with
	// `go run ./cmd/experiments -run shardingexec -json`).
	for i := 0; i < b.N; i++ {
		tbl, err := bench.ShardingComparison(benchExecBlk, int64(2020+i), bench.ShardProfileNames(), []int{2, 8}, 8)
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkShardedPipelineComparison(b *testing.B) {
	// E10 at benchmark scale; the recorded baseline lives in
	// docs/bench/E10-baseline.json (regenerate with
	// `go run ./cmd/experiments -run shardedpipeline -json`).
	for i := 0; i < b.N; i++ {
		tbl, err := bench.ShardedPipelineComparison(benchExecBlk, int64(2020+i), bench.ShardProfileNames(), []int{2, 8}, 8)
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkAdaptiveShardingComparison(b *testing.B) {
	// E11 at benchmark scale; the recorded baseline lives in
	// docs/bench/E11-baseline.json (regenerate with
	// `go run ./cmd/experiments -run adaptiveshard -json`).
	for i := 0; i < b.N; i++ {
		tbl, err := bench.AdaptiveShardingComparison(benchExecBlk, int64(2020+i),
			bench.AdaptiveShardProfileNames(), []int{2, 8}, 8, 4)
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkTraceReplayComparison(b *testing.B) {
	// E12 at benchmark scale; the recorded baseline lives in
	// docs/bench/E12-baseline.json (regenerate with
	// `go run ./cmd/experiments -run tracereplay -json`).
	for i := 0; i < b.N; i++ {
		tbl, err := bench.TraceReplayComparison(int64(2020+i), 8, 4, 2, 4)
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkStreamingComparison(b *testing.B) {
	// E13 at benchmark scale: the full streaming service — JSON-RPC
	// submission clients, bounded mempool, block builder (FIFO and
	// conflict-aware), sharded streaming executor — with every run
	// verified against the sequential replay of the built chain. The
	// recorded baseline lives in docs/bench/E13-baseline.json (regenerate
	// with `go run ./cmd/experiments -run streaming -json`).
	for i := 0; i < b.N; i++ {
		tbl, err := bench.StreamingComparison(int64(2020+i), 8, 4)
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkRecoveryComparison(b *testing.B) {
	// E14 at benchmark scale: the durable builder service (WAL
	// persist-then-ack, async checkpoints) against the in-memory control,
	// with cold recovery timed and verified per row. The recorded baseline
	// lives in docs/bench/E14-baseline.json (regenerate with
	// `go run ./cmd/experiments -run recovery -json`).
	for i := 0; i < b.N; i++ {
		tbl, err := bench.RecoveryComparison(int64(2020+i), 8, 4)
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

func BenchmarkMemoryBoundedComparison(b *testing.B) {
	// E15 at benchmark scale: the sharded executor with per-shard cache
	// budgets at 1/10 and 1/100 of the account population, evicting to a
	// real base store on disk, against the all-RAM control — every row
	// root- and receipt-verified. The recorded baseline lives in
	// docs/bench/E15-baseline.json (regenerate with
	// `go run ./cmd/experiments -run memorybounded -json`).
	for i := 0; i < b.N; i++ {
		tbl, err := bench.MemoryBoundedComparison(int64(2020+i), 8, 4)
		renderAll(b, err)
		renderAll(b, bench.RenderTable(io.Discard, tbl))
	}
}

// Micro-benchmarks of the pipeline stages.

func BenchmarkTDGBuildAccount(b *testing.B) {
	g, err := chainsim.NewAcctGen(chainsim.EthereumProfile(), 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	var blk *account.Block
	var receipts []*account.Receipt
	for {
		bb, rr, ok, err := g.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			break
		}
		blk, receipts = bb, rr
	}
	view := core.ViewFromReceipts(blk, receipts)
	b.ReportMetric(float64(len(blk.Txs)), "txs/block")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildAccount(view)
	}
}

func BenchmarkTDGBuildAccountRefined(b *testing.B) {
	// The operation-level refinement hot path on a hot-key block, where
	// most edges are droppable delta–delta credits.
	g, err := chainsim.NewAcctGen(chainsim.HotWalletProfile(), 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	var blk *account.Block
	var receipts []*account.Receipt
	for {
		bb, rr, ok, err := g.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			break
		}
		blk, receipts = bb, rr
	}
	view := core.ViewFromReceipts(blk, receipts)
	b.ReportMetric(float64(len(blk.Txs)), "txs/block")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildAccountRefined(view)
	}
}

func BenchmarkMVStoreResolveDeltas(b *testing.B) {
	// Snapshot read of a hot key whose chain carries pending deltas from
	// several committed blocks — the read path operation-level pipelining
	// leans on. The chain is GC-compacted to the pipeline-depth shape.
	store := mvstore.NewStoreDelta[string, int64](func(a, d int64) int64 { return a + d })
	const depth = 4
	for ts := uint64(1); ts <= 64; ts++ {
		err := store.CommitWrites(ts, map[string]mvstore.Write[int64]{
			"hot":                  {Kind: mvstore.DeltaAdd, Val: int64(ts)},
			fmt.Sprintf("k%d", ts): {Kind: mvstore.Put, Val: int64(ts)},
		})
		if err != nil {
			b.Fatal(err)
		}
		if ts > depth {
			store.TruncateBelow(ts - depth)
		}
	}
	snap := store.PinLatest()
	defer snap.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := snap.Resolve("hot", 0); v == 0 {
			b.Fatal("delta chain lost")
		}
	}
}

func BenchmarkMeasureUTXOBlock(b *testing.B) {
	g, err := chainsim.NewUTXOGen(chainsim.BitcoinProfile(), 40, 1)
	if err != nil {
		b.Fatal(err)
	}
	var last interface{ NumTxs() int }
	var blocks []func() core.Metrics
	for {
		blk, ok, err := g.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			break
		}
		last = blk
		bb := blk
		blocks = append(blocks, func() core.Metrics { return core.MeasureUTXOBlock(bb) })
	}
	b.ReportMetric(float64(last.NumTxs()), "txs/lastblock")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocks[len(blocks)-1]()
	}
}

func BenchmarkSequentialExecution(b *testing.B) {
	pre, blk := execFixture(b)
	b.ReportMetric(float64(len(blk.Txs)), "txs/block")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Sequential(pre.Copy(), blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeculativeExecution(b *testing.B) {
	pre, blk := execFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (exec.Speculative{Workers: 8}).Execute(pre.Copy(), blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupedExecution(b *testing.B) {
	pre, blk := execFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (exec.Grouped{Workers: 8}).Execute(pre.Copy(), blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTMExecution(b *testing.B) {
	pre, blk := execFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (exec.STMExec{Workers: 8}).Execute(pre.Copy(), blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedExecution(b *testing.B) {
	pre, blk := execFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (exec.Sharded{Workers: 8, Shards: 4}).Execute(pre.Copy(), blk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedMerge isolates the cross-shard commit on a cross-heavy
// workload: the same blocks run with the strictly sequential merge
// (SequentialMerge: one transaction per wave and group) and with the
// batched/parallel merge, so the wall-time delta is attributable to the
// merge alone — phase 1, classification and the per-shard commits are
// identical. Profile the hot path with
// `go run ./cmd/experiments -run shardedpipeline -cpuprofile cpu.out`.
func BenchmarkShardedMerge(b *testing.B) {
	pre, blocks := shardedChainFixture(b)
	for _, tc := range []struct {
		name string
		seq  bool
	}{{"sequential", true}, {"parallel", false}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				work := pre.Copy()
				for _, blk := range blocks {
					e := exec.Sharded{Workers: 8, Shards: 4, SequentialMerge: tc.seq}
					if _, _, err := e.ExecuteSharded(work, blk); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkShardedChain measures the pipelined sharded chain end to end,
// per-block execution vs ExecuteChain, on the same cross-heavy history.
func BenchmarkShardedChain(b *testing.B) {
	pre, blocks := shardedChainFixture(b)
	b.Run("per-block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			work := pre.Copy()
			for _, blk := range blocks {
				if _, err := (exec.Sharded{Workers: 8, Shards: 4}).Execute(work, blk); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := (exec.Sharded{Workers: 8, Shards: 4, Depth: 2}).ExecuteChain(pre.Copy(), blocks); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The adaptive map's full bill: heat observation on every block plus a
	// rebalance-and-migrate barrier every other block.
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := exec.Sharded{Workers: 8, Depth: 2, Map: heat.NewAdaptiveMap(4, nil), RebalanceEvery: 2}
			if _, _, err := e.ExecuteChain(pre.Copy(), blocks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func shardedChainFixture(b *testing.B) (*account.StateDB, []*account.Block) {
	b.Helper()
	pre, blocks, err := chainsim.GenerateAccountChain(chainsim.ShardCrossHeavyProfile(), 6, 1)
	if err != nil {
		b.Fatal(err)
	}
	return pre, blocks
}

func execFixture(b *testing.B) (*account.StateDB, *account.Block) {
	b.Helper()
	g, err := chainsim.NewAcctGen(chainsim.EthereumProfile(), 6, 1)
	if err != nil {
		b.Fatal(err)
	}
	var pre *account.StateDB
	var blk *account.Block
	for {
		p := g.Chain().State().Copy()
		bb, _, ok, err := g.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			break
		}
		pre, blk = p, bb
	}
	return pre, blk
}

func BenchmarkLPTSchedule(b *testing.B) {
	jobs := make([]int, 500)
	for i := range jobs {
		jobs[i] = 1 + i%7
	}
	jobs[0] = 90 // the LCC
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.LPT(jobs, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeedupModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 64; n *= 2 {
			if _, err := core.SpeculativeSpeedup(200, 0.6, n); err != nil {
				b.Fatal(err)
			}
			if _, err := core.GroupSpeedup(n, 0.2); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Example-style sanity check that the benchmark scale reproduces the
// paper's headline: ~6x group speed-up at 8 cores on late-era Ethereum.
func Example() {
	r := bench.NewRunner(60, 10, 2020)
	fig, err := r.Fig10()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var maxGroup8 float64
	for _, s := range fig.Panels[1].Series {
		if s.Name == "8 cores" {
			for _, v := range s.Values {
				if v > maxGroup8 {
					maxGroup8 = v
				}
			}
		}
	}
	fmt.Println(maxGroup8 > 4.0)
	// Output: true
}
