// The clockrand analyzer: no wall clocks, no global RNG, no channel races
// in the deterministic packages.
package main

import (
	"go/ast"
	"go/types"
)

var clockrandAnalyzer = &Analyzer{
	Name:   "clockrand",
	Waiver: "clock",
	Doc: `bans time.Now/Since/Until, the un-seeded top-level math/rand
functions, and multi-way select statements inside the deterministic
packages, outside //txlint:clock <reason> waivers. Deterministic paths must
take time from an injected clock (mempool.Pool.now), randomness from a
seeded *rand.Rand (chainsim's per-stream generators), and channel
arbitration must never pick which state gets committed.`,
	Scope: inDeterministicScope,
	Run:   runClockrand,
}

// bannedClockFuncs are wall-clock reads; their results differ per run and
// per replica.
var bannedClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandConstructors are the math/rand(/v2) entry points that build an
// explicitly seeded generator — the sanctioned pattern.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runClockrand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pass.checkClockUse(n)
			case *ast.SelectStmt:
				pass.checkSelect(n)
			}
			return true
		})
	}
}

// checkClockUse flags any reference (call or value) to time.Now/Since/Until
// and to math/rand's package-level functions. References count, not just
// calls: storing time.Now into an injected-clock field is the one
// legitimate use, and that default-assignment site is exactly where a
// waiver should document the injection point.
func (p *Pass) checkClockUse(sel *ast.SelectorExpr) {
	obj := p.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedClockFuncs[fn.Name()] {
			p.Reportf(sel.Pos(), "time.%s in a deterministic package: inject a clock (cf. mempool.Pool.now) or waive with //txlint:clock <reason>", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededRandConstructors[fn.Name()] {
			p.Reportf(sel.Pos(), "%s.%s uses the shared un-seeded generator: use a seeded *rand.Rand (cf. chainsim's per-stream rngs) or waive with //txlint:clock <reason>", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkSelect flags selects with two or more communication cases: when
// several channels are ready the runtime picks one pseudo-randomly, so any
// such select on a path that orders or produces committed state is a replay
// hazard. Single-case selects (with or without default) are deterministic
// polling and pass.
func (p *Pass) checkSelect(sel *ast.SelectStmt) {
	comms := 0
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		p.Reportf(sel.Pos(), "select with %d communication cases races nondeterministically in a deterministic package; restructure or waive with //txlint:clock <reason>", comms)
	}
}
