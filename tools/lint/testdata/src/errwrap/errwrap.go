// Positive and negative cases for the errwrap analyzer.
package errwrap

import (
	"errors"
	"fmt"
	"io"
)

var errBase = errors.New("base")

func badWrapV(err error) error {
	return fmt.Errorf("reading: %v", err) // want "formats error err with %v"
}

func badWrapS(err error) error {
	return fmt.Errorf("reading: %s", err) // want "formats error err with %s"
}

func badWrapIndexed(err error) error {
	return fmt.Errorf("%[2]v: %[1]s", "ctx", err) // want "formats error err with %v"
}

func goodWrap(err error) error {
	return fmt.Errorf("reading: %w", err)
}

func nonErrorOperand(n int) error {
	return fmt.Errorf("count %v out of range (%d%%)", n, 50)
}

func badSentinel(err error) bool {
	return err == io.EOF // want "use errors.Is"
}

func badSentinelNeq(err error) bool {
	return err != errBase // want "use errors.Is"
}

func goodSentinel(err error) bool {
	return errors.Is(err, io.EOF)
}

func nilCheck(err error) bool {
	return err != nil
}

// two locals compared is not a sentinel comparison.
func localComparison(a, b error) bool {
	return a == b
}

func waivedIdentity(err error) bool {
	//txlint:errwrap identity check on purpose: this instance must round-trip unwrapped
	return err == errBase
}
