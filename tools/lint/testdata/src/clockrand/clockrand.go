// Positive and negative cases for the clockrand analyzer.
package clockrand

import (
	"math/rand"
	"time"
)

func work() {}

func wallClock() time.Duration {
	start := time.Now() // want "time.Now in a deterministic package"
	work()
	return time.Since(start) // want "time.Since in a deterministic package"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn uses the shared un-seeded generator"
}

// seeded constructors and *rand.Rand methods are the sanctioned pattern.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func racySelect(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// single-case select with default is deterministic polling.
func pollingSelect(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// The one legitimate wall-clock site: a default for an injectable clock,
// documented by a waiver.
type pool struct {
	now func() time.Time
}

func newPool() *pool {
	//txlint:clock default clock for production; tests inject a fixed one
	return &pool{now: time.Now}
}
