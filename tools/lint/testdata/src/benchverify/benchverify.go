// Positive and negative cases for the benchverify analyzer.
package benchverify

import "fmt"

type result struct{ root string }

func run() result { return result{root: "r"} }

func verifyRoot(got, want string) error {
	if got != want {
		return fmt.Errorf("root %s diverged from %s", got, want)
	}
	return nil
}

// UncheckedComparison records a result without ever checking the root.
func UncheckedComparison() string { // want "never reaches a verify"
	return run().root
}

// CheckedComparison verifies directly.
func CheckedComparison() error {
	return verifyRoot(run().root, "r")
}

// TransitiveComparison verifies through a helper chain.
func TransitiveComparison() error {
	return check(run())
}

func check(r result) error { return verifyRoot(r.root, "r") }

// ClosureComparison verifies from inside a closure it spawns.
func ClosureComparison() error {
	var err error
	func() {
		err = verifyRoot(run().root, "r")
	}()
	return err
}

// Summarize does not end in Comparison, so it is exempt.
func Summarize() string { return run().root }

// unexportedComparison is not part of the driver API, so it is exempt.
func unexportedComparison() string { return run().root }

//txlint:benchverify verification happens in the harness that replays this driver's output
func DelegatedComparison() string {
	return run().root
}
