// Positive and negative cases for the maporder analyzer. Flagged lines
// carry `// want "substring"` expectations; unflagged loops document which
// branch of the order-insensitivity proof admits them.
package maporder

import "sort"

var sink []string

// process is impure (it mutates package state), so a loop body calling it
// cannot be proven order-insensitive.
func process(k string) {
	sink = append(sink, k)
}

func impureCall(m map[string]int) {
	for k := range m { // want "range over map m"
		process(k)
	}
}

func lastWriterWins(m map[string]int) int {
	last := 0
	for _, v := range m { // want "range over map m"
		last = v
	}
	return last
}

func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map m"
		keys = append(keys, k)
	}
	return keys
}

func earlyReturnTruncatesWrite(m map[string]int, limit int) int {
	sum := 0
	for _, v := range m { // want "range over map m"
		sum += v
		if sum > limit {
			return limit
		}
	}
	return sum
}

func conflictingFlagConstants(m map[string]int) int {
	state := 0
	for _, v := range m { // want "range over map m"
		if v > 0 {
			state = 1
		} else {
			state = 2
		}
	}
	return state
}

func siblingEntryRead(m, out map[string]int) {
	for k, v := range m { // want "range over map m"
		out[k] = v + out["total"]
	}
}

// --- provably order-insensitive loops below: no findings expected ---

func commutativeSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func keyedWrites(m, dst map[string]int) {
	for k, v := range m {
		dst[k] = v * 2
	}
}

func keyedDelete(stale map[string]bool, m map[string]int) {
	for k := range stale {
		delete(m, k)
	}
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func minReduction(m map[string]int) int {
	minV := int(^uint(0) >> 1)
	for _, v := range m {
		if v < minV {
			minV = v
		}
	}
	return minV
}

func setFlagAndStop(m map[string]int, target int) bool {
	found := false
	for _, v := range m {
		if v == target {
			found = true
			break
		}
	}
	return found
}

var errTooLong = "key too long"

func pureScanWithInvariantReturn(m map[string]int, maxLen int) string {
	for k := range m {
		if len(k) > maxLen {
			return errTooLong
		}
	}
	return ""
}

type pair struct {
	A string
	B string
}

func injectiveCompositeKey(m map[string]int, wide map[pair]int) {
	for k, v := range m {
		wide[pair{A: k, B: "fixed"}] = v
	}
}

func perKeyAppend(m map[string]int, groups map[string][]int) {
	for k, v := range m {
		groups[k] = append(groups[k], v)
	}
}

func waivedHandAudited(m map[string]int) {
	//txlint:ordered sink is consumed as a set by the test harness; order never observed
	for k := range m {
		process(k)
	}
}
