// Staleness scoping: when only clockrand runs, its unused waiver is stale
// but another analyzer's unused waiver is out of scope.
package stalewaiver

//txlint:ordered out of scope in a clockrand-only run
var x = 1

//txlint:clock nothing here reads a clock, so this waiver is stale
var y = 2
