// Positive and negative cases for the lockdiscipline analyzer.
package lockdiscipline

import "sync"

type store struct {
	mu   sync.Mutex
	data map[string]int
}

// the early-return path leaks the lock.
func (s *store) leakyGet(k string) int {
	s.mu.Lock() // want "still held at return"
	if v, ok := s.data[k]; ok {
		return v
	}
	s.mu.Unlock()
	return 0
}

func (s *store) deferredGet(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k]
}

func (s *store) balancedBump(k string) {
	s.mu.Lock()
	s.data[k]++
	s.mu.Unlock()
}

// an unlock inside a deferred closure also counts as a deferred release.
func (s *store) closureDefer(k string) int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.data[k]
}

// RLock pairs with RUnlock, independently of the write flavor.
type rwstore struct {
	mu sync.RWMutex
	n  int
}

func (s *rwstore) leakyRead() int {
	s.mu.RLock() // want "still held at return"
	return s.n
}

func (s *rwstore) goodRead() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

func snapshotCopy(s *store) {
	dup := *s // want "copies a value containing a sync mutex"
	_ = dup
}

func rangeCopy(stores []store) int {
	n := 0
	for _, st := range stores { // want "range value copies an element containing a sync mutex"
		n += len(st.data)
	}
	return n
}

// ranging over pointers copies nothing lock-bearing.
func rangePointers(stores []*store) int {
	n := 0
	for _, st := range stores {
		n += len(st.data)
	}
	return n
}

// conditional release schemes carry a waiver on the Lock site.
func (s *store) waivedConditional(done bool) {
	//txlint:lock released by the caller through finish() on the done path
	s.mu.Lock()
	if done {
		return
	}
	s.mu.Unlock()
}
