// A waiver with no reason: the framework must flag it unconditionally.
package barewaiver

import "time"

//txlint:clock
func now() time.Time { return time.Now() }
