package main

import "testing"

// TestRepoIsLintClean runs the full analyzer suite over every package of
// the module and fails on any unwaived diagnostic. This makes the repo's
// lint-cleanliness part of tier-1 `go test ./...`: a determinism hazard
// (or a waiver gone stale) fails the build even when CI's explicit
// `make lint` step is skipped.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint sweep type-checks the whole module; skipped in -short")
	}
	pkgs, err := load([]string{"./..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages for ./...")
	}
	diags := runAnalyzers(pkgs, allAnalyzers)
	unwaived := 0
	for _, d := range diags {
		if !d.Waived {
			unwaived++
			t.Errorf("%s", d)
		}
	}
	if unwaived > 0 {
		t.Errorf("%d unwaived finding(s); fix the hazard or add //txlint:<keyword> <reason>", unwaived)
	}
}
