// The maporder analyzer: no map-iteration order may leak into committed
// state inside the deterministic packages.
//
// Go randomizes map iteration per run, so any `for … range m` whose body's
// effects depend on visit order is a replay-determinism hazard: two
// replicas (or two runs) disagree on committed state, slice contents, or
// scheduling decisions. The analyzer proves a loop harmless when its
// effects all commute; everything else needs sorting or an explicit
// //txlint:ordered <reason> waiver.
//
// The proof is an effect classification of the body:
//
//   - keyed writes    m2[k…] = v / delete(m2, k…): the index mentions the
//     range key, so iterations touch distinct entries; the body must not
//     read the target map at any other key.
//   - accumulation    x += e (and -, *, |, &, ^), x++/x--: commutative
//     reductions; the accumulator must not be read elsewhere in the body.
//   - flag sets       x = <const>, always the same constant: an "any"
//     reduction; the flag must not be read in the body.
//   - min/max         if v < acc { acc = v }: commutative extremum.
//   - loop locals     := definitions and assignments to variables declared
//     in the loop (including the range key/value), reset each iteration.
//   - scans           return <loop-invariant> / continue / unlabeled break,
//     with restrictions: returns and breaks may not coexist with writes,
//     since early exit would truncate them order-dependently.
//   - collect+sort    s = append(s, …) is order-sensitive alone, but passes
//     when the next statement that mentions s is a sort over it.
//
// All conditions along the way must be side-effect-free; calls are impure
// unless provably pure (see purity.go).
package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

var maporderAnalyzer = &Analyzer{
	Name:   "maporder",
	Waiver: "ordered",
	Doc: `flags "for … range" over a map inside the deterministic packages
unless the loop body is provably order-insensitive (commuting effects:
keyed writes, commutative accumulation, flag sets, min/max reductions,
loop-invariant scans, or collect-then-sort) or carries a //txlint:ordered
<reason> waiver with non-empty reason.`,
	Scope: inDeterministicScope,
	Run:   runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		siblings := stmtLists(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapType(pass.TypeOf(rs.X)) {
				return true
			}
			if pass.orderInsensitive(rs, siblings) {
				return true
			}
			pass.Reportf(rs.Pos(), "range over map %s: iteration order is randomized and the loop body is not provably order-insensitive; sort the keys or waive with //txlint:ordered <reason>", exprString(rs.X))
			return true
		})
	}
}

// exprString renders a short source-like form of an expression for
// messages and for structural identity of lvalues/keys.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// stmtLists maps every statement to its enclosing statement list and index,
// so the collect-then-sort rule can look at a range loop's following
// siblings.
type stmtListPos struct {
	list []ast.Stmt
	idx  int
}

func stmtLists(f *ast.File) map[ast.Stmt]stmtListPos {
	out := make(map[ast.Stmt]stmtListPos)
	record := func(list []ast.Stmt) {
		for i, s := range list {
			out[s] = stmtListPos{list, i}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			record(n.List)
		case *ast.CaseClause:
			record(n.Body)
		case *ast.CommClause:
			record(n.Body)
		}
		return true
	})
	return out
}

// loopEffects accumulates the classified effects of one range body.
type loopEffects struct {
	pass   *Pass
	rs     *ast.RangeStmt
	keyObj types.Object

	impure  bool       // anything outside the whitelist
	breaks  []ast.Stmt // unlabeled breaks at loop depth 0
	returns []*ast.ReturnStmt

	// keyedWrites: target-map lvalue string -> set of index strings used in
	// writes/deletes (must cover every read of the target too).
	keyedWrites map[string]map[string]bool
	keyedObjs   map[string]types.Object
	// constAssigns: flag lvalue string -> set of constant RHS strings.
	constAssigns map[string]map[string]bool
	// accums / minmax: lvalue strings reduced commutatively.
	accums map[string]bool
	minmax map[string]bool
	// appends: slice lvalue string -> true (order-sensitive unless sorted
	// right after; resolved by the caller via the sibling list).
	appends map[string]bool
	// keyDerived: loop-local variables defined as pure expressions of the
	// range key (k := deltaKey(a)); indexing by one still counts as keyed.
	// keyInjective marks the subset whose defining expression provably
	// takes distinct values for distinct range keys.
	keyDerived   map[types.Object]bool
	keyInjective map[types.Object]bool
}

func newLoopEffects(p *Pass, rs *ast.RangeStmt) *loopEffects {
	return &loopEffects{
		pass:         p,
		rs:           rs,
		keyObj:       p.rangeVarObj(rs.Key),
		keyedWrites:  map[string]map[string]bool{},
		keyedObjs:    map[string]types.Object{},
		constAssigns: map[string]map[string]bool{},
		accums:       map[string]bool{},
		minmax:       map[string]bool{},
		appends:      map[string]bool{},
		keyDerived:   map[types.Object]bool{},
		keyInjective: map[types.Object]bool{},
	}
}

// orderInsensitive is the analyzer's core proof.
func (p *Pass) orderInsensitive(rs *ast.RangeStmt, siblings map[ast.Stmt]stmtListPos) bool {
	e := newLoopEffects(p, rs)
	e.stmts(rs.Body.List, 0)
	if e.impure {
		return false
	}

	// Early exits truncate the iteration set order-dependently, so they
	// may not coexist with write effects. A return may not even coexist
	// with a flag set: the enclosing function exits mid-reduction and a
	// caller could observe the partial flag through a closure or pointer.
	writes := len(e.keyedWrites) > 0 || len(e.accums) > 0 || len(e.minmax) > 0 || len(e.appends) > 0
	if len(e.returns) > 0 && (writes || len(e.constAssigns) > 0) {
		return false
	}
	// An unlabeled break is safe only in a pure scan, or in the
	// set-flag-and-stop idiom: the sole effect is one idempotent constant
	// flag, and every break directly follows a set of that flag — then
	// the flag is already at its final value when iteration stops, and
	// the skipped iterations could only have re-set the same constant.
	if len(e.breaks) > 0 {
		if writes || len(e.returns) > 0 || len(e.constAssigns) > 1 {
			return false
		}
		if len(e.constAssigns) == 1 {
			for _, br := range e.breaks {
				pos, ok := siblings[br]
				if !ok || pos.idx == 0 {
					return false
				}
				prev, ok := pos.list[pos.idx-1].(*ast.AssignStmt)
				if !ok || prev.Tok != token.ASSIGN || len(prev.Lhs) != 1 {
					return false
				}
				if _, tracked := e.constAssigns[exprString(ast.Unparen(prev.Lhs[0]))]; !tracked {
					return false
				}
			}
		}
	}
	// A flag assigned two different constants resolves by visit order.
	for _, consts := range e.constAssigns {
		if len(consts) > 1 {
			return false
		}
	}
	// Reductions and flags must not be read elsewhere in the body (a read
	// would observe a partially-reduced, order-dependent value).
	if e.flagsRead() {
		return false
	}
	// Every read of a keyed-write target must use one of the written key
	// expressions (same-entry read-modify is fine; sibling entries are
	// order-dependent).
	if !e.keyedReadsCovered() {
		return false
	}
	// Appends leak order unless the collected slice is sorted before its
	// next use.
	for target := range e.appends {
		if !p.sortedBeforeUse(rs, target, siblings) {
			return false
		}
	}
	return true
}

// rangeVarObj resolves a range variable, or nil for `_`/absent.
func (p *Pass) rangeVarObj(v ast.Expr) types.Object {
	id, ok := v.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return p.ObjectOf(id)
}

// loopLocal reports whether an expression is an identifier declared by the
// range statement itself or inside its body — per-iteration storage.
func (e *loopEffects) loopLocal(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := e.pass.ObjectOf(id)
	return obj != nil && e.rs.Pos() <= obj.Pos() && obj.Pos() < e.rs.End()
}

func (e *loopEffects) stmts(list []ast.Stmt, depth int) {
	for _, s := range list {
		e.stmt(s, depth)
	}
}

func (e *loopEffects) stmt(s ast.Stmt, depth int) {
	if e.impure {
		return
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		e.assign(s)
	case *ast.IncDecStmt:
		if !e.pass.pureExpr(s.X) {
			e.impure = true
			return
		}
		if !e.loopLocal(s.X) {
			e.noteAccum(s.X)
		}
	case *ast.IfStmt:
		if e.minmaxPattern(s) {
			return
		}
		if s.Init != nil {
			e.stmt(s.Init, depth)
		}
		if !e.pass.pureExpr(s.Cond) {
			e.impure = true
			return
		}
		e.stmts(s.Body.List, depth)
		if s.Else != nil {
			e.stmt(s.Else, depth)
		}
	case *ast.BlockStmt:
		e.stmts(s.List, depth)
	case *ast.SwitchStmt:
		if s.Init != nil {
			e.stmt(s.Init, depth)
		}
		if s.Tag != nil && !e.pass.pureExpr(s.Tag) {
			e.impure = true
			return
		}
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, x := range cc.List {
				if !e.pass.pureExpr(x) {
					e.impure = true
					return
				}
			}
			// A switch case ends in an implicit break; that break does not
			// truncate the range loop, so depth+1 hides it.
			e.stmts(cc.Body, depth+1)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if !e.loopInvariant(r) {
				e.impure = true
				return
			}
		}
		e.returns = append(e.returns, s)
	case *ast.BranchStmt:
		switch {
		case s.Label != nil:
			e.impure = true // labeled jumps cross loop levels; hand-audit
		case s.Tok == token.CONTINUE:
			// skipping an iteration commutes
		case s.Tok == token.BREAK && depth == 0:
			e.breaks = append(e.breaks, s)
		case s.Tok == token.BREAK:
			// breaks an inner (deterministic) loop, not this range
		default:
			e.impure = true // goto, fallthrough
		}
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			e.impure = true
			return
		}
		// delete(m2, k…): a keyed removal.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
			if _, builtin := e.pass.ObjectOf(id).(*types.Builtin); builtin {
				if e.keyedBy(call.Args[1]) && e.pass.pureExpr(call.Args[1]) {
					e.noteKeyedWrite(call.Args[0], call.Args[1])
					return
				}
			}
		}
		e.impure = true
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			e.impure = true
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				e.impure = true
				return
			}
			for _, v := range vs.Values {
				if !e.pass.pureExpr(v) {
					e.impure = true
					return
				}
			}
		}
	case *ast.ForStmt:
		// A nested conventional loop iterates deterministically; its body's
		// effects still count against this range's order-sensitivity.
		if s.Init != nil {
			e.stmt(s.Init, depth+1)
		}
		if s.Cond != nil && !e.pass.pureExpr(s.Cond) {
			e.impure = true
			return
		}
		if s.Post != nil {
			e.stmt(s.Post, depth+1)
		}
		e.stmts(s.Body.List, depth+1)
	case *ast.RangeStmt:
		// Nested range over a map is checked independently as its own
		// hazard; over anything else it is deterministic. Either way its
		// body's effects belong to this loop's account too.
		if !e.pass.pureExpr(s.X) {
			e.impure = true
			return
		}
		e.stmts(s.Body.List, depth+1)
	default:
		e.impure = true
	}
}

func (e *loopEffects) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 ||
			!e.pass.pureExpr(s.Lhs[0]) || !e.pass.pureExpr(s.Rhs[0]) {
			e.impure = true
			return
		}
		// The addend must not read the accumulator family (sum += other is
		// fine; m[k] += m[j] observes a sibling mid-reduction).
		if base := baseIdentString(s.Lhs[0]); base != "" && refersToString(s.Rhs[0], base) {
			e.impure = true
			return
		}
		if !e.loopLocal(s.Lhs[0]) {
			e.noteAccum(s.Lhs[0])
		}
	case token.DEFINE:
		for _, r := range s.Rhs {
			if !e.pass.pureExpr(r) {
				e.impure = true
				return
			}
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" && e.mentionsKey(s.Rhs[i]) {
					if obj := e.pass.ObjectOf(id); obj != nil {
						e.keyDerived[obj] = true
						if e.injectiveKey(s.Rhs[i]) {
							e.keyInjective[obj] = true
						}
					}
				}
			}
		}
	case token.ASSIGN:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			// m[k…] = append(m[k…], pure…) is a per-key accumulation and
			// commutes across distinct keys; s = append(s, …) collects in
			// visit order and must be followed by a sort.
			if e.keyedAppend(s) {
				return
			}
			if e.appendCall(s, s.Rhs[0]) {
				return
			}
		}
		for _, r := range s.Rhs {
			if !e.pass.pureExpr(r) {
				e.impure = true
				return
			}
		}
		for i, l := range s.Lhs {
			var value ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				value = s.Rhs[i]
			}
			switch {
			case e.loopLocal(l):
				// iteration-private
			case e.keyedWriteTarget(l, value):
				// m2[k…] = v: recorded by keyedWriteTarget
			case value != nil && isConstExpr(e.pass, value):
				e.noteConstAssign(l, value)
			default:
				e.impure = true
				return
			}
		}
	default:
		e.impure = true
	}
}

// keyedAppend recognizes `m[k…] = append(m[k…], pure…)`: a per-key list
// accumulation where iterations touch distinct entries.
func (e *loopEffects) keyedAppend(s *ast.AssignStmt) bool {
	idx, ok := ast.Unparen(s.Lhs[0]).(*ast.IndexExpr)
	if !ok || !isMapType(e.pass.TypeOf(idx.X)) {
		return false
	}
	if !e.keyedBy(idx.Index) || !e.pass.pureExpr(idx.Index) || !e.pass.pureExpr(idx.X) {
		return false
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, builtin := e.pass.ObjectOf(id).(*types.Builtin); !builtin {
		return false
	}
	lhs := exprString(ast.Unparen(s.Lhs[0]))
	if len(call.Args) == 0 || exprString(ast.Unparen(call.Args[0])) != lhs {
		return false
	}
	base := exprString(ast.Unparen(idx.X))
	for _, a := range call.Args[1:] {
		if !e.pass.pureExpr(a) || refersToString(a, base) {
			return false
		}
		// Through a possibly-colliding derived key, a collision appends
		// twice; that only commutes when every appended value is the same
		// each iteration.
		if !e.injectiveKey(idx.Index) && !e.loopInvariant(a) {
			return false
		}
	}
	e.noteKeyedWrite(idx.X, idx.Index)
	return true
}

// appendCall recognizes `s = append(s, args…)` with pure arguments that do
// not read the collected slice, and records s as an append target.
func (e *loopEffects) appendCall(s *ast.AssignStmt, r ast.Expr) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(r).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, builtin := e.pass.ObjectOf(id).(*types.Builtin); !builtin {
		return false
	}
	target := exprString(ast.Unparen(s.Lhs[0]))
	if len(call.Args) == 0 || exprString(ast.Unparen(call.Args[0])) != target {
		return false
	}
	for _, a := range call.Args[1:] {
		if !e.pass.pureExpr(a) || refersToString(a, target) {
			return false
		}
	}
	e.appends[target] = true
	return true
}

// keyedWriteTarget recognizes `m2[k…] = v` lvalues and records the write.
// Through a derived (possibly colliding) key the value must be
// loop-invariant, so a collision re-writes the same value.
func (e *loopEffects) keyedWriteTarget(l, value ast.Expr) bool {
	idx, ok := ast.Unparen(l).(*ast.IndexExpr)
	if !ok {
		return false
	}
	if !isMapType(e.pass.TypeOf(idx.X)) {
		return false
	}
	if !e.keyedBy(idx.Index) || !e.pass.pureExpr(idx.Index) || !e.pass.pureExpr(idx.X) {
		return false
	}
	if !e.injectiveKey(idx.Index) && (value == nil || !e.loopInvariant(value)) {
		return false
	}
	e.noteKeyedWrite(idx.X, idx.Index)
	return true
}

func (e *loopEffects) noteKeyedWrite(target, key ast.Expr) {
	t := exprString(ast.Unparen(target))
	if e.keyedWrites[t] == nil {
		e.keyedWrites[t] = map[string]bool{}
	}
	e.keyedWrites[t][exprString(key)] = true
	if id, ok := ast.Unparen(target).(*ast.Ident); ok {
		e.keyedObjs[t] = e.pass.ObjectOf(id)
	}
}

func (e *loopEffects) noteAccum(l ast.Expr) {
	e.accums[exprString(ast.Unparen(l))] = true
}

func (e *loopEffects) noteConstAssign(l, r ast.Expr) {
	t := exprString(ast.Unparen(l))
	if e.constAssigns[t] == nil {
		e.constAssigns[t] = map[string]bool{}
	}
	e.constAssigns[t][exprString(r)] = true
}

// minmaxPattern matches `if X op Acc { Acc = X }` (op ∈ < > <= >=), the
// commutative extremum reduction. The body must be exactly the one
// assignment.
func (e *loopEffects) minmaxPattern(s *ast.IfStmt) bool {
	if s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	if s.Init != nil {
		// allow `if v := pure; v op acc { acc = v }`
		init, ok := s.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE {
			return false
		}
		for _, r := range init.Rhs {
			if !e.pass.pureExpr(r) {
				return false
			}
		}
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	acc, val := exprString(asg.Lhs[0]), exprString(asg.Rhs[0])
	x, y := exprString(cond.X), exprString(cond.Y)
	if !(x == val && y == acc || x == acc && y == val) {
		return false
	}
	if !e.pass.pureExpr(cond.X) || !e.pass.pureExpr(cond.Y) || !e.pass.pureExpr(asg.Rhs[0]) {
		return false
	}
	if e.loopLocal(asg.Lhs[0]) {
		return true
	}
	e.minmax[acc] = true
	return true
}

// loopInvariant reports whether a return result is the same value no
// matter which iteration returns it: pure, and mentioning neither the
// range variables nor anything declared in the loop.
func (e *loopEffects) loopInvariant(r ast.Expr) bool {
	if tv, ok := e.pass.TypesInfo.Types[r]; ok && tv.Value != nil {
		return true
	}
	if !e.pass.pureExpr(r) {
		return false
	}
	invariant := true
	ast.Inspect(r, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := e.pass.ObjectOf(id); obj != nil &&
				e.rs.Pos() <= obj.Pos() && obj.Pos() < e.rs.End() {
				invariant = false
			}
		}
		return invariant
	})
	return invariant
}

// flagsRead reports whether any reduction target (flag, accumulator,
// min/max) is referenced in the body outside its own reducing statements —
// which would observe an order-dependent intermediate value. Structural
// string identity is used, matching how the targets were recorded.
func (e *loopEffects) flagsRead() bool {
	targets := map[string]int{}
	for t := range e.constAssigns {
		targets[t] = 0
	}
	for t := range e.accums {
		targets[t] = 0
	}
	for t := range e.minmax {
		targets[t] = 0
	}
	if len(targets) == 0 {
		return false
	}
	counts := map[string]int{}
	ast.Inspect(e.rs.Body, func(n ast.Node) bool {
		if x, ok := n.(ast.Expr); ok {
			s := exprString(ast.Unparen(x))
			if _, tracked := targets[s]; tracked {
				counts[s]++
				return false // don't double-count sub-expressions
			}
		}
		return true
	})
	// Each reducing statement mentions its target exactly once on the LHS
	// (compound/minmax RHS uses were rejected earlier), except minmax,
	// whose pattern mentions the accumulator twice (cond + assign).
	writes := map[string]int{}
	ast.Inspect(e.rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				writes[exprString(ast.Unparen(l))]++
			}
		case *ast.IncDecStmt:
			writes[exprString(ast.Unparen(n.X))]++
		}
		return true
	})
	for t := range e.minmax {
		writes[t]++ // the comparison read inside the pattern
	}
	for t := range targets {
		if counts[t] > writes[t] {
			return true
		}
	}
	return false
}

// keyedReadsCovered checks that every reference to a keyed-write target in
// the body is an index at one of the written key expressions (or the write
// itself): reading a sibling entry would observe order-dependent state.
func (e *loopEffects) keyedReadsCovered() bool {
	for target, keys := range e.keyedWrites {
		obj := e.keyedObjs[target]
		ok := true
		ast.Inspect(e.rs.Body, func(n ast.Node) bool {
			if !ok {
				return false
			}
			// Accept m[writtenKey] wholesale; then any *other* appearance
			// of the bare target is a violation.
			if idx, isIdx := n.(*ast.IndexExpr); isIdx {
				if exprString(ast.Unparen(idx.X)) == target && keys[exprString(idx.Index)] {
					return false // skip: covered read/write of the same entry
				}
			}
			if call, isCall := n.(*ast.CallExpr); isCall {
				if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "delete" && len(call.Args) == 2 {
					if exprString(ast.Unparen(call.Args[0])) == target && keys[exprString(call.Args[1])] {
						// skip the target mention, keep checking the key
						ast.Inspect(call.Args[1], func(m ast.Node) bool { return mentionCheck(m, target, obj, e, &ok) })
						return false
					}
				}
			}
			return mentionCheck(n, target, obj, e, &ok)
		})
		if !ok {
			return false
		}
	}
	return true
}

// mentionCheck flags a bare mention of the keyed-write target.
func mentionCheck(n ast.Node, target string, obj types.Object, e *loopEffects, ok *bool) bool {
	x, isExpr := n.(ast.Expr)
	if !isExpr {
		return true
	}
	if exprString(ast.Unparen(x)) == target {
		*ok = false
		return false
	}
	if id, isIdent := x.(*ast.Ident); isIdent && obj != nil && e.pass.ObjectOf(id) == obj {
		*ok = false
		return false
	}
	return true
}

// mentionsKey reports whether expr mentions the range-key variable or a
// key-derived local.
func (e *loopEffects) mentionsKey(expr ast.Expr) bool {
	if e.pass.refersTo(expr, e.keyObj) {
		return true
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && e.keyDerived[e.pass.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// keyedBy is mentionsKey plus the requirement the key expression exists.
func (e *loopEffects) keyedBy(expr ast.Expr) bool {
	if e.keyObj == nil {
		return false
	}
	return e.mentionsKey(expr)
}

// exactKey reports whether the index is the range-key variable itself.
func (e *loopEffects) exactKey(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	return ok && e.keyObj != nil && e.pass.ObjectOf(id) == e.keyObj
}

// injectiveKey reports whether the index expression provably takes
// distinct values on distinct iterations, so writes through it hit
// distinct entries: the range key itself, a local defined by such an
// expression, a composite literal embedding the whole range key (or
// selectors covering every field of its struct type), or a single-argument
// pure constructor applied to the bare range key whose returned literal
// does the same with its parameter. Anything else (k.Addr, hashes) may
// collide; writes through those are safe only when collisions are
// idempotent (loop-invariant values).
func (e *loopEffects) injectiveKey(x ast.Expr) bool {
	x = ast.Unparen(x)
	if e.exactKey(x) {
		return true
	}
	switch x := x.(type) {
	case *ast.Ident:
		return e.keyInjective[e.pass.ObjectOf(x)]
	case *ast.CompositeLit:
		return e.injectiveComposite(x, e.keyObj)
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok || len(x.Args) != 1 || !e.exactKey(x.Args[0]) {
			return false
		}
		fn, ok := e.pass.ObjectOf(id).(*types.Func)
		if !ok {
			return false
		}
		fd := e.pass.funcDecl(fn)
		if fd == nil || fd.Recv != nil || fd.Body == nil || len(fd.Body.List) != 1 || fd.Type.Params == nil {
			return false
		}
		ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return false
		}
		cl, ok := ast.Unparen(ret.Results[0]).(*ast.CompositeLit)
		if !ok {
			return false
		}
		var paramObj types.Object
		params := 0
		for _, f := range fd.Type.Params.List {
			for _, n := range f.Names {
				paramObj = e.pass.ObjectOf(n)
				params++
			}
		}
		return params == 1 && e.injectiveComposite(cl, paramObj)
	}
	return false
}

// injectiveComposite reports whether the literal determines obj: it embeds
// obj itself as an element, or selectors off obj covering every field of
// obj's struct type. Other elements cannot reduce distinctness, whatever
// they are.
func (e *loopEffects) injectiveComposite(cl *ast.CompositeLit, obj types.Object) bool {
	if obj == nil {
		return false
	}
	covered := map[string]bool{}
	for _, el := range cl.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		v = ast.Unparen(v)
		if id, ok := v.(*ast.Ident); ok && e.pass.ObjectOf(id) == obj {
			return true
		}
		if sel, ok := v.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && e.pass.ObjectOf(id) == obj {
				covered[sel.Sel.Name] = true
			}
		}
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if !covered[st.Field(i).Name()] {
			return false
		}
	}
	return true
}

// baseIdentString returns the printed base of an index expression's map
// (m[k] -> "m", s.m[k] -> "s.m"), or "" for non-index lvalues.
func baseIdentString(l ast.Expr) string {
	if idx, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
		return exprString(ast.Unparen(idx.X))
	}
	return ""
}

// refersToString reports whether expr contains a sub-expression printing
// exactly as target.
func refersToString(expr ast.Expr, target string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if x, ok := n.(ast.Expr); ok && exprString(ast.Unparen(x)) == target {
			found = true
		}
		return !found
	})
	return found
}

// isConstExpr reports whether the type-checker evaluated e to a constant.
func isConstExpr(p *Pass, e ast.Expr) bool {
	if tv, ok := p.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true
	}
	// Composite literals of constants (struct{}{}-style set markers) are
	// not go/types constants but are value-identical every iteration.
	if cl, ok := ast.Unparen(e).(*ast.CompositeLit); ok {
		for _, el := range cl.Elts {
			if !isConstExpr(p, el) {
				return false
			}
			if kv, ok := el.(*ast.KeyValueExpr); ok && !isConstExpr(p, kv.Value) {
				return false
			}
		}
		return true
	}
	return false
}

// sortedBeforeUse implements the collect-then-sort rule: scanning the
// statements after the loop, every sibling that mentions the collected
// slice before a recognized sort over it must itself be another
// order-insensitive append-collector into the same slice.
func (p *Pass) sortedBeforeUse(rs *ast.RangeStmt, target string, siblings map[ast.Stmt]stmtListPos) bool {
	pos, ok := siblings[rs]
	if !ok {
		return false
	}
	for _, s := range pos.list[pos.idx+1:] {
		if !stmtMentions(s, target) {
			continue
		}
		if isSortCall(p, s, target) {
			return true
		}
		if other, ok := s.(*ast.RangeStmt); ok {
			// e.g. two loops appending into the same slice, then one sort.
			e := newLoopEffects(p, other)
			e.stmts(other.Body.List, 0)
			if !e.impure && len(e.returns) == 0 && len(e.breaks) == 0 && e.appends[target] && e.keyedReadsCovered() && !e.flagsRead() {
				continue
			}
		}
		return false
	}
	return false
}

func stmtMentions(s ast.Stmt, target string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if x, ok := n.(ast.Expr); ok && exprString(ast.Unparen(x)) == target {
			found = true
		}
		return !found
	})
	return found
}

// isSortCall recognizes sort.Slice/SliceStable/Sort/Strings/Ints and
// slices.Sort* applied to the target.
func isSortCall(p *Pass, s ast.Stmt, target string) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
	default:
		return false
	}
	switch fn.Name() {
	case "Slice", "SliceStable", "Sort", "SortFunc", "SortStableFunc",
		"Strings", "Ints", "Float64s", "Stable":
	default:
		return false
	}
	return len(call.Args) > 0 && exprString(ast.Unparen(call.Args[0])) == target
}
