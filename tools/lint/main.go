// Command txlint runs the project's determinism-and-discipline analyzers
// over the given package patterns (default ./...) and exits non-zero when
// any unwaived diagnostic remains. See lint.go for the framework and the
// waiver syntax, and docs/ARCHITECTURE.md ("Determinism invariants & static
// analysis") for the invariant catalogue.
//
// Usage:
//
//	txlint [-only maporder,clockrand] [-waived] [packages]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// allAnalyzers is the multichecker's suite, in report order.
var allAnalyzers = []*Analyzer{
	maporderAnalyzer,
	clockrandAnalyzer,
	errwrapAnalyzer,
	lockdisciplineAnalyzer,
	benchverifyAnalyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	showWaived := flag.Bool("waived", false, "also list waived findings with their reasons")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: txlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range allAnalyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s waiver //txlint:%s\n", a.Name, a.Waiver)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := runAnalyzers(pkgs, analyzers)
	unwaived, waived := 0, 0
	for _, d := range diags {
		if d.Waived {
			waived++
			if *showWaived {
				fmt.Println(d)
			}
			continue
		}
		unwaived++
		fmt.Println(d)
	}
	if unwaived > 0 {
		fmt.Fprintf(os.Stderr, "txlint: %d finding(s) (%d waived)\n", unwaived, waived)
		os.Exit(1)
	}
	if *showWaived || waived > 0 {
		fmt.Fprintf(os.Stderr, "txlint: clean (%d waived finding(s) across %d package(s))\n", waived, len(pkgs))
	}
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(only string) ([]*Analyzer, error) {
	if only == "" {
		return allAnalyzers, nil
	}
	byName := make(map[string]*Analyzer, len(allAnalyzers))
	for _, a := range allAnalyzers {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
