// The benchverify analyzer: no benchmark result is recorded without root
// verification — the loss-free invariant E12 established, generalized to
// every comparison driver.
package main

import (
	"go/ast"
	"go/types"
	"strings"
)

var benchverifyAnalyzer = &Analyzer{
	Name:   "benchverify",
	Waiver: "benchverify",
	Doc: `requires every exported bench.*Comparison experiment driver to
reach, through the package-internal static call graph, a verification
function (a func whose name starts with "verify"): a speedup number from an
engine whose root was never checked against the sequential oracle is a
measurement of nothing. Drivers that delegate verification elsewhere carry
a //txlint:benchverify <reason> waiver on the func line.`,
	Scope: func(pkgPath string) bool {
		return strings.HasSuffix(pkgPath, "/bench") || pkgPath == "bench" || strings.HasSuffix(pkgPath, "/internal/bench")
	},
	Run: runBenchverify,
}

const verifyPrefix = "verify"

func runBenchverify(pass *Pass) {
	// calls maps each package-level function (or method) to the
	// package-level functions it calls anywhere in its body, including
	// inside closures and goroutines it spawns.
	calls := make(map[*types.Func][]*types.Func)
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var id *ast.Ident
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					id = fun
				case *ast.SelectorExpr:
					id = fun.Sel
				default:
					return true
				}
				if callee, ok := pass.ObjectOf(id).(*types.Func); ok && callee.Pkg() == pass.Pkg {
					calls[fn] = append(calls[fn], callee)
				}
				return true
			})
		}
	}

	for fn, fd := range decls {
		if !fn.Exported() || !strings.HasSuffix(fn.Name(), "Comparison") {
			continue
		}
		if reachesVerifier(fn, calls, make(map[*types.Func]bool)) {
			continue
		}
		pass.Reportf(fd.Name.Pos(), "comparison driver %s never reaches a %s* root/receipt verification call; its results are unverified against the sequential oracle (waive with //txlint:benchverify <reason>)", fn.Name(), verifyPrefix)
	}
}

// reachesVerifier walks the static call graph depth-first from fn.
func reachesVerifier(fn *types.Func, calls map[*types.Func][]*types.Func, seen map[*types.Func]bool) bool {
	if seen[fn] {
		return false
	}
	seen[fn] = true
	for _, callee := range calls[fn] {
		if strings.HasPrefix(callee.Name(), verifyPrefix) {
			return true
		}
		if reachesVerifier(callee, calls, seen) {
			return true
		}
	}
	return false
}
