// txlint is the project's determinism-and-discipline linter: a
// multichecker over five analyzers that machine-check the invariants every
// engine's serial-equivalence proof rests on. The repo's replay model
// (sequential roots as oracles, fixed-lag snapshots, heat-ordered merge
// waves) tolerates zero nondeterminism in committed state, yet the hazards
// that break it — map-iteration order leaking into output, wall clocks or
// global RNG in deterministic paths, sloppy lock or error-wrapping
// discipline — are invisible to go vet and only probabilistically visible
// to the fuzzers. txlint fails CI the moment one is introduced.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so each analyzer's Run could be ported to a
// real multichecker unchanged; the build environment vendors no external
// modules, so loading is done with the standard library alone: package
// metadata and compiler export data come from `go list -export -json`, and
// target packages are type-checked from source against that export data
// (see loader.go).
//
// Findings are suppressed by waiver directives in the source:
//
//	//txlint:<keyword> <reason>
//
// on the flagged line or the line directly above it, where <keyword> is the
// analyzer's waiver keyword (ordered, clock, errwrap, lock, benchverify)
// and <reason> is mandatory non-empty prose. A waiver with an empty reason
// is itself a diagnostic and cannot be waived.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one named check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "maporder"
	Doc  string // one-paragraph description of what it enforces

	// Waiver is the directive keyword that suppresses this analyzer's
	// findings: `//txlint:<Waiver> <reason>`.
	Waiver string

	// Scope reports whether the analyzer applies to the package with the
	// given import path. A nil Scope means every package. The analysistest
	// runner overrides Scope so testdata packages are always in scope.
	Scope func(pkgPath string) bool

	// Run performs the check, reporting findings through the pass.
	Run func(*Pass)
}

// A Pass provides one analyzer with one type-checked package, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	PkgPath   string

	waivers   map[string]map[int]*waiver // file -> line -> directive
	diags     *[]Diagnostic
	funcDecls map[*types.Func]*ast.FuncDecl // lazy, see funcDecl
}

// funcDecl resolves a package-level function object to its declaration,
// building the index on first use.
func (p *Pass) funcDecl(fn *types.Func) *ast.FuncDecl {
	if p.funcDecls == nil {
		p.funcDecls = make(map[*types.Func]*ast.FuncDecl)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if o, ok := p.ObjectOf(fd.Name).(*types.Func); ok {
						p.funcDecls[o] = fd
					}
				}
			}
		}
	}
	return p.funcDecls[fn]
}

// A Diagnostic is one finding, already resolved against waivers.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string

	// Waived is true when a matching //txlint:<keyword> directive with a
	// non-empty reason covers the flagged line; waived findings do not fail
	// the build but are listed under -waived.
	Waived bool
	Reason string // the waiver's reason, when Waived
}

func (d Diagnostic) String() string {
	state := ""
	if d.Waived {
		state = fmt.Sprintf(" (waived: %s)", d.Reason)
	}
	return fmt.Sprintf("%s: [%s] %s%s", d.Pos, d.Analyzer, d.Message, state)
}

// waiver is one parsed //txlint: directive.
type waiver struct {
	keyword string
	reason  string
	pos     token.Position
	used    bool
}

// Reportf records a finding at pos, resolving it against the waiver
// directives of its file. A directive matches when its keyword equals the
// analyzer's Waiver and it sits on the flagged line or the line directly
// above.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	d := Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if byLine, ok := p.waivers[position.Filename]; ok {
		for _, line := range []int{position.Line, position.Line - 1} {
			if w, ok := byLine[line]; ok && w.keyword == p.Analyzer.Waiver && w.reason != "" {
				w.used = true
				d.Waived = true
				d.Reason = w.reason
				break
			}
		}
	}
	*p.diags = append(*p.diags, d)
}

// TypeOf is a nil-safe shorthand for the pass's type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

// ObjectOf resolves an identifier to its object (use or definition).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

const directivePrefix = "txlint:"

// parseWaivers extracts every //txlint: directive of a file, keyed by the
// line the directive ends on (a directive on its own line covers the next
// line through the line-above rule in Reportf; a trailing directive covers
// its own line).
func parseWaivers(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) map[string]map[int]*waiver {
	out := make(map[string]map[int]*waiver)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				keyword, reason, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				w := &waiver{keyword: keyword, reason: strings.TrimSpace(reason), pos: pos}
				if w.reason == "" {
					// A bare waiver is worse than none: it silences a
					// determinism hazard without recording why that is safe.
					// This finding is deliberately unwaivable.
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "txlint",
						Message:  fmt.Sprintf("waiver //txlint:%s has no reason; write //txlint:%s <why this is safe>", keyword, keyword),
					})
					continue
				}
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]*waiver)
				}
				out[pos.Filename][pos.Line] = w
			}
		}
	}
	return out
}

// runAnalyzers applies every analyzer to every in-scope package and returns
// the combined findings in file/line order. Waivers that matched nothing
// are reported too: a stale waiver either outlived its hazard or never
// covered one, and both deserve eyes.
func runAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		waivers := parseWaivers(pkg.Fset, pkg.Files, &diags)
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.PkgPath,
				waivers:   waivers,
				diags:     &diags,
			}
			a.Run(pass)
		}
		ranKeywords := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			ranKeywords[a.Waiver] = true
		}
		for _, byLine := range waivers {
			for _, w := range byLine {
				// A waiver is stale only relative to an analyzer that ran:
				// under -only, other analyzers' waivers are out of scope.
				if !w.used && ranKeywords[w.keyword] {
					diags = append(diags, Diagnostic{
						Pos:      w.pos,
						Analyzer: "txlint",
						Message:  fmt.Sprintf("stale waiver //txlint:%s: no %s finding on this or the next line", w.keyword, w.keyword),
					})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// deterministicPackages are the packages whose execution must be bitwise
// reproducible across runs and replicas: they produce or order committed
// state. Scope helpers below key off this list.
var deterministicPackages = map[string]bool{
	"txconcur/internal/exec":      true,
	"txconcur/internal/core":      true,
	"txconcur/internal/heat":      true,
	"txconcur/internal/mvstore":   true,
	"txconcur/internal/mempool":   true,
	"txconcur/internal/dataset":   true,
	"txconcur/internal/wal":       true,
	"txconcur/internal/basestore": true,
}

// lockedPackages hold the mutexes guarding shared engine state; the
// lockdiscipline analyzer applies there.
var lockedPackages = map[string]bool{
	"txconcur/internal/mvstore":   true,
	"txconcur/internal/mempool":   true,
	"txconcur/internal/stm":       true,
	"txconcur/internal/client":    true,
	"txconcur/internal/wal":       true,
	"txconcur/internal/basestore": true,
}

func inDeterministicScope(pkgPath string) bool { return deterministicPackages[pkgPath] }
func inLockedScope(pkgPath string) bool        { return lockedPackages[pkgPath] }
func inModuleScope(pkgPath string) bool {
	return pkgPath == "txconcur" || strings.HasPrefix(pkgPath, "txconcur/")
}
