// An analysistest-style runner over the stdlib loader: each analyzer has a
// package under testdata/src/<name> whose lines carry trailing
// `// want "substring"` comments marking expected findings. The runner
// loads the package with loadDir, runs the analyzer with its scope forced
// open, and checks the unwaived diagnostics against the expectations both
// ways — every expectation must be found, and every finding expected.
// Lines with a valid waiver and no want comment are the waiver-path
// negative cases (a stale waiver would surface as an unexpected
// diagnostic, so those are checked for free).
package main

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantPrefix introduces an expectation comment; the quoted strings after
// it are substrings the diagnostic message must contain.
const wantPrefix = "// want "

var wantQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

func runAnalysisTest(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg, err := loadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", name, err)
	}

	// Force the testdata package into scope: Scope keys off real module
	// import paths, which testdata packages intentionally do not have.
	open := *a
	open.Scope = nil
	diags := runAnalyzers([]*Package{pkg}, []*Analyzer{&open})

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, strings.TrimSuffix(wantPrefix, " "))
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantQuoted.FindAllStringSubmatch(text, -1)
				if len(quoted) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, q := range quoted {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, substr: q[1]})
				}
			}
		}
	}

	for _, d := range diags {
		if d.Waived {
			continue
		}
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

func TestMaporderAnalyzer(t *testing.T)  { runAnalysisTest(t, maporderAnalyzer, "maporder") }
func TestClockrandAnalyzer(t *testing.T) { runAnalysisTest(t, clockrandAnalyzer, "clockrand") }
func TestErrwrapAnalyzer(t *testing.T)   { runAnalysisTest(t, errwrapAnalyzer, "errwrap") }
func TestLockdisciplineAnalyzer(t *testing.T) {
	runAnalysisTest(t, lockdisciplineAnalyzer, "lockdiscipline")
}
func TestBenchverifyAnalyzer(t *testing.T) { runAnalysisTest(t, benchverifyAnalyzer, "benchverify") }

// TestBareWaiverIsUnwaivable pins the empty-reason rule without a testdata
// package: the framework diagnostic must appear and must itself resist
// waiving.
func TestBareWaiverIsUnwaivable(t *testing.T) {
	var diags []Diagnostic
	pkg, err := loadDir(filepath.Join("testdata", "src", "barewaiver"))
	if err != nil {
		t.Fatal(err)
	}
	parseWaivers(pkg.Fset, pkg.Files, &diags)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "has no reason") {
		t.Fatalf("bare waiver diagnostics = %v, want exactly one 'has no reason'", diags)
	}
}

// TestStaleWaiverScopedToRunAnalyzers pins the -only interaction: a waiver
// for an analyzer that did not run must not be reported stale, while a
// genuinely unused waiver for one that did run must be.
func TestStaleWaiverScopedToRunAnalyzers(t *testing.T) {
	pkg, err := loadDir(filepath.Join("testdata", "src", "stalewaiver"))
	if err != nil {
		t.Fatal(err)
	}
	open := *clockrandAnalyzer
	open.Scope = nil
	diags := runAnalyzers([]*Package{pkg}, []*Analyzer{&open})
	var stale []string
	for _, d := range diags {
		if strings.Contains(d.Message, "stale waiver") {
			stale = append(stale, fmt.Sprintf("%s", d.Message))
		}
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "txlint:clock") {
		t.Fatalf("stale diagnostics = %v, want exactly the unused clock waiver", stale)
	}
}
