// Package loading without golang.org/x/tools: metadata and compiler export
// data come from `go list -export -json -deps`, and the requested packages
// are then parsed and type-checked from source with go/types, their imports
// satisfied by the export data through go/importer's gc importer. This is
// the same "syntax for targets, export data for dependencies" mode
// x/tools/go/packages uses; building it on the standard library keeps the
// module dependency-free (the environment has no module proxy access).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked target package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// moduleRoot walks upward from dir to the directory containing go.mod, so
// the loader works from any cwd inside the module (`go test` runs package
// tests from the package directory).
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("txlint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// goList runs `go list -export -deps -json` on the patterns from root and
// decodes the package stream. -export populates (and reuses) the build
// cache's compiled archives, whose export data the type-checker imports.
func goList(root string, patterns []string) ([]*listPackage, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("txlint: go list: %w\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPackage
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("txlint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types imports from the export-data files `go
// list -export` reported, via the gc importer (which understands the
// compiler's archive format). One instance caches across all packages of a
// load.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("txlint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// load resolves the patterns relative to the enclosing module and returns
// the non-dependency packages parsed and type-checked. Test files are not
// analyzed: the invariants txlint enforces are about committed state, which
// only non-test sources produce (and testdata trees intentionally violate
// them).
func load(patterns []string) ([]*Package, error) {
	root, err := moduleRoot(".")
	if err != nil {
		return nil, err
	}
	listed, err := goList(root, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("txlint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly && p.Name != "" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, lp := range targets {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("txlint: %w", err)
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("txlint: type-checking %s: %w", lp.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath:   lp.ImportPath,
			Dir:       lp.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return out, nil
}

// loadDir type-checks the .go files of one directory as a standalone
// package whose imports resolve through the module's export data (the
// analysistest runner loads testdata packages this way; testdata trees are
// invisible to `go build ./...` but their stdlib imports still need real
// type information).
func loadDir(dir string) (*Package, error) {
	root, err := moduleRoot(".")
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			imports[spec.Path.Value[1:len(spec.Path.Value)-1]] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("txlint: no Go files in %s", dir)
	}
	patterns := make([]string, 0, len(imports))
	for path := range imports {
		if path != "unsafe" {
			patterns = append(patterns, path)
		}
	}
	exports := make(map[string]string)
	if len(patterns) > 0 {
		listed, err := goList(root, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newTypesInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	pkgPath := filepath.Base(dir)
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("txlint: type-checking %s: %w", dir, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
