// Shared syntactic/type helpers for the analyzers: side-effect-free
// expression checks, identifier reference scans, and mutex-type detection.
package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pureExpr reports whether evaluating e can neither mutate state nor
// observe mutable global state beyond reading variables: no calls (except
// the len/cap builtins, type conversions, and provably-pure same-package
// constructors), no channel receives, no address-taking, no function
// literals. Reads of variables, fields, map and slice indexes, comparisons
// and arithmetic are all pure.
func (p *Pass) pureExpr(e ast.Expr) bool {
	return p.pureExprSeen(e, nil)
}

func (p *Pass) pureExprSeen(e ast.Expr, seen map[*types.Func]bool) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if p.isPureBuiltinOrConversion(n) {
				return true
			}
			if seen == nil {
				seen = make(map[*types.Func]bool)
			}
			if p.pureFuncCall(n, seen) {
				return true
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND || n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return pure
	})
	return pure
}

// pureFuncCall recognizes calls to same-package value constructors that
// are provably pure: a plain function (no receiver) whose whole body is a
// single `return` of pure expressions — the deltaKey/StateKey-constructor
// shape. The seen set bounds recursion through mutually-calling
// constructors.
func (p *Pass) pureFuncCall(call *ast.CallExpr, seen map[*types.Func]bool) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	fn, ok := p.ObjectOf(id).(*types.Func)
	if !ok || fn.Pkg() != p.Pkg || seen[fn] {
		return false
	}
	seen[fn] = true
	fd := p.funcDecl(fn)
	if fd == nil || fd.Recv != nil || fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		if !p.pureExprSeen(r, seen) {
			return false
		}
	}
	for _, a := range call.Args {
		if !p.pureExprSeen(a, seen) {
			return false
		}
	}
	return true
}

// isPureBuiltinOrConversion recognizes calls that cannot have effects:
// len/cap/min/max, and type conversions like uint64(x) or T(x).
func (p *Pass) isPureBuiltinOrConversion(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := p.ObjectOf(fun); obj != nil {
			if _, ok := obj.(*types.Builtin); ok {
				switch fun.Name {
				case "len", "cap", "min", "max":
					return true
				}
				return false
			}
			if _, ok := obj.(*types.TypeName); ok {
				return true // conversion
			}
		}
	case *ast.SelectorExpr:
		if obj := p.ObjectOf(fun.Sel); obj != nil {
			if _, ok := obj.(*types.TypeName); ok {
				return true // qualified conversion, e.g. types.Address(x)
			}
		}
	case *ast.ArrayType, *ast.MapType, *ast.InterfaceType, *ast.StarExpr:
		return true // conversion to a composite type, e.g. []byte(s)
	}
	return false
}

// refersTo reports whether expr mentions the variable obj.
func (p *Pass) refersTo(expr ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mutexKind classifies a type as one of the sync mutexes (after stripping
// one level of pointer). Returns "" when it is neither.
func mutexKind(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex", "RWMutex":
		return obj.Name()
	}
	return ""
}

// containsMutex reports whether a value of type t embeds a sync.Mutex or
// sync.RWMutex by value, at any struct-field depth.
func containsMutex(t types.Type) bool {
	return containsMutexDepth(t, 0, make(map[types.Type]bool))
}

func containsMutexDepth(t types.Type, depth int, seen map[types.Type]bool) bool {
	if depth > 8 || seen[t] {
		return false
	}
	seen[t] = true
	if mutexKind(t) != "" {
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			return true
		}
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutexDepth(u.Field(i).Type(), depth+1, seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutexDepth(u.Elem(), depth+1, seen)
	}
	return false
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error (so a %v/%s verb on it
// should be %w, and == against a sentinel of it should be errors.Is).
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}
