// The errwrap analyzer: error wrapping and matching discipline, module
// wide.
package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

var errwrapAnalyzer = &Analyzer{
	Name:   "errwrap",
	Waiver: "errwrap",
	Doc: `flags fmt.Errorf calls that format an error operand with %v or %s
(project style is %w, which keeps the chain inspectable by errors.Is/As),
and ==/!= comparisons against sentinel error variables (which break the
moment anyone wraps; use errors.Is). Comparisons against nil are fine.`,
	Scope: inModuleScope,
	Run:   runErrwrap,
}

func runErrwrap(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pass.checkErrorf(n)
			case *ast.BinaryExpr:
				pass.checkSentinelComparison(n)
			}
			return true
		})
	}
}

// checkErrorf inspects fmt.Errorf calls whose format string is a constant,
// maps each verb to its operand, and flags %v/%s applied to a value that
// implements error.
func (p *Pass) checkErrorf(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := p.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	operands := call.Args[1:]
	for _, v := range parseVerbs(format) {
		if v.verb != 'v' && v.verb != 's' {
			continue
		}
		if v.operand >= len(operands) {
			continue // malformed format; vet's printf check owns that
		}
		arg := operands[v.operand]
		if isErrorType(p.TypeOf(arg)) {
			p.Reportf(arg.Pos(), "fmt.Errorf formats error %s with %%%c; use %%w so errors.Is/As see through the wrap (or waive with //txlint:errwrap <reason>)", exprString(arg), v.verb)
		}
	}
}

// verbUse is one formatting verb and the index of the operand it consumes.
type verbUse struct {
	verb    rune
	operand int
}

// parseVerbs walks a printf format string, tracking operand consumption
// including '*' width/precision arguments and '%%' escapes. Explicit
// argument indexes ("%[2]v") are honored.
func parseVerbs(format string) []verbUse {
	var out []verbUse
	operand := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// explicit index
		if i < len(format) && format[i] == '[' {
			j := strings.IndexByte(format[i:], ']')
			if j < 0 {
				break
			}
			n := 0
			for _, c := range format[i+1 : i+j] {
				if c < '0' || c > '9' {
					n = -1
					break
				}
				n = n*10 + int(c-'0')
			}
			if n > 0 {
				operand = n - 1
			}
			i += j + 1
		}
		// width / precision, each possibly '*'
		for k := 0; k < 2; k++ {
			if i < len(format) && format[i] == '*' {
				operand++
				i++
			}
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if k == 0 && i < len(format) && format[i] == '.' {
				i++
			} else {
				break
			}
		}
		if i >= len(format) {
			break
		}
		verb := rune(format[i])
		if verb == '%' {
			continue
		}
		out = append(out, verbUse{verb: verb, operand: operand})
		operand++
	}
	return out
}

// checkSentinelComparison flags err == ErrSomething / err != ErrSomething
// where both operands are errors and one resolves to a package-level error
// variable (a sentinel). nil comparisons and comparisons between two local
// values pass.
func (p *Pass) checkSentinelComparison(be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(p, x) || isNilIdent(p, y) {
		return
	}
	if !isErrorType(p.TypeOf(x)) || !isErrorType(p.TypeOf(y)) {
		return
	}
	sentinel := p.sentinelName(x)
	if sentinel == "" {
		sentinel = p.sentinelName(y)
	}
	if sentinel == "" {
		return
	}
	p.Reportf(be.Pos(), "comparing errors with %s against sentinel %s; use errors.Is so wrapped chains still match (or waive with //txlint:errwrap <reason>)", be.Op, sentinel)
}

// sentinelName returns the qualified name of a package-level error variable
// reference, or "".
func (p *Pass) sentinelName(e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := p.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	// Package-level: declared directly in the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Name() + "." + v.Name()
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.ObjectOf(id).(*types.Nil)
	return isNil
}
