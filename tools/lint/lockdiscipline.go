// The lockdiscipline analyzer: mutexes in the shared-state packages are
// released on every path, and never copied by value.
package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

var lockdisciplineAnalyzer = &Analyzer{
	Name:   "lockdiscipline",
	Waiver: "lock",
	Doc: `flags (a) paths that return while holding a sync.Mutex/RWMutex
acquired in the same function without a deferred unlock — the abstract walk
tracks Lock/RLock against Unlock/RUnlock per receiver expression across
branches — and (b) assignments and range clauses that copy a value
containing a mutex (beyond the receiver/argument cases vet's copylocks
covers). Hand-over-hand or conditional-release schemes carry a
//txlint:lock <reason> waiver.`,
	Scope: inLockedScope,
	Run:   runLockdiscipline,
}

func runLockdiscipline(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pass.checkLockPaths(fd.Body)
		}
		// Function literals are their own lock scopes (a goroutine or defer
		// body acquiring a lock must release it itself).
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				pass.checkLockPaths(fl.Body)
			}
			return true
		})
		pass.checkMutexCopies(f)
	}
}

// lockOp classifies one statement's effect on a mutex, keyed by the
// receiver expression's source form plus read/write flavor, so s.mu and
// p.pool.mu track independently and RLock pairs with RUnlock.
type lockOp struct {
	key     string
	acquire bool
	pos     token.Pos
}

// mutexCall decodes a call expression into a lock operation, or ok=false.
// Resolution is by method object: any func named (R)Lock/(R)Unlock whose
// receiver is sync.Mutex, sync.RWMutex or sync.Locker counts, which covers
// embedded mutexes and Locker-typed fields alike.
func (p *Pass) mutexCall(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	var acquire bool
	var flavor string
	switch fn.Name() {
	case "Lock":
		acquire, flavor = true, "W"
	case "Unlock":
		acquire, flavor = false, "W"
	case "RLock":
		acquire, flavor = true, "R"
	case "RUnlock":
		acquire, flavor = false, "R"
	default:
		return lockOp{}, false
	}
	return lockOp{
		key:     exprString(sel.X) + "|" + flavor,
		acquire: acquire,
		pos:     call.Pos(),
	}, true
}

// lockState is the abstract state of one control-flow path: how many times
// each mutex key is held (with the position of its outstanding Lock) and
// which keys have a deferred release pending.
type lockState struct {
	held     map[string][]token.Pos
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string][]token.Pos{}, deferred: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = append([]token.Pos(nil), v...)
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// merge folds a fall-through branch state into s pessimistically: a key is
// held after the branch point if either path can leave it held, so a
// conditional release still flags the path that skips it.
func (s *lockState) merge(o *lockState) {
	for k, v := range o.held {
		if len(v) > len(s.held[k]) {
			s.held[k] = v
		}
	}
	for k := range o.deferred {
		s.deferred[k] = true
	}
}

// checkLockPaths walks one function body and reports Lock sites whose lock
// is still held, with no deferred release, when a return (or the end of the
// function) is reached.
func (p *Pass) checkLockPaths(body *ast.BlockStmt) {
	reported := map[token.Pos]bool{}
	state := newLockState()
	terminated := p.walkLocks(body.List, state, reported)
	if !terminated {
		p.reportHeld(state, body.End(), reported, "function exit")
	}
}

func (p *Pass) reportHeld(s *lockState, at token.Pos, reported map[token.Pos]bool, where string) {
	for key, positions := range s.held {
		if len(positions) == 0 || s.deferred[key] {
			continue
		}
		pos := positions[len(positions)-1]
		if reported[pos] {
			continue
		}
		reported[pos] = true
		p.Reportf(pos, "lock acquired here is still held at %s on some path, with no deferred unlock; add defer or waive with //txlint:lock <reason>", where)
	}
	_ = at
}

// walkLocks interprets a statement list, returning true when every path
// through it terminates (returns or panics) before falling off the end.
func (p *Pass) walkLocks(list []ast.Stmt, state *lockState, reported map[token.Pos]bool) bool {
	for _, stmt := range list {
		if p.walkLockStmt(stmt, state, reported) {
			return true
		}
	}
	return false
}

func (p *Pass) walkLockStmt(stmt ast.Stmt, state *lockState, reported map[token.Pos]bool) (terminated bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, ok := p.mutexCall(call); ok {
				if op.acquire {
					state.held[op.key] = append(state.held[op.key], op.pos)
				} else if n := len(state.held[op.key]); n > 0 {
					state.held[op.key] = state.held[op.key][:n-1]
				}
				return false
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, builtin := p.ObjectOf(id).(*types.Builtin); builtin {
					return true
				}
			}
		}
	case *ast.DeferStmt:
		if op, ok := p.mutexCall(s.Call); ok && !op.acquire {
			state.deferred[op.key] = true
			return false
		}
		// defer func() { ...mu.Unlock()... }()
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if op, ok := p.mutexCall(call); ok && !op.acquire {
						state.deferred[op.key] = true
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		p.reportHeld(state, s.Pos(), reported, "return")
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			p.walkLockStmt(s.Init, state, reported)
		}
		thenState := state.clone()
		thenTerm := p.walkLocks(s.Body.List, thenState, reported)
		elseState := state.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = p.walkLockStmt(s.Else, elseState, reported)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*state = *elseState
		case elseTerm:
			*state = *thenState
		default:
			*state = *thenState
			state.merge(elseState)
		}
	case *ast.BlockStmt:
		return p.walkLocks(s.List, state, reported)
	case *ast.LabeledStmt:
		return p.walkLockStmt(s.Stmt, state, reported)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			clauses = s.Body.List
		case *ast.TypeSwitchStmt:
			clauses = s.Body.List
		case *ast.SelectStmt:
			clauses = s.Body.List
		}
		merged := state.clone()
		for _, clause := range clauses {
			var body []ast.Stmt
			switch c := clause.(type) {
			case *ast.CaseClause:
				body = c.Body
			case *ast.CommClause:
				body = c.Body
			}
			cs := state.clone()
			if !p.walkLocks(body, cs, reported) {
				merged.merge(cs)
			}
		}
		*state = *merged
	case *ast.ForStmt:
		// Loop bodies must balance their own acquisitions per iteration;
		// walk with a clone so in-loop locking is checked without leaking
		// iteration effects into the outer path.
		bodyState := state.clone()
		p.walkLocks(s.Body.List, bodyState, reported)
	case *ast.RangeStmt:
		bodyState := state.clone()
		p.walkLocks(s.Body.List, bodyState, reported)
	}
	return false
}

// checkMutexCopies flags value copies of mutex-bearing types that vet's
// copylocks does not: plain assignments/definitions from another variable
// or dereference, and range value variables over mutex-bearing element
// types.
func (p *Pass) checkMutexCopies(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return true
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return true
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isCopySource(rhs) {
					continue
				}
				// `_ = x` discards the copy; nothing can unlock through it.
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if containsMutex(p.TypeOf(rhs)) {
					p.Reportf(n.Lhs[i].Pos(), "assignment copies a value containing a sync mutex (type %s); keep a pointer instead (or waive with //txlint:lock <reason>)", p.TypeOf(rhs))
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			if containsMutex(p.TypeOf(n.Value)) {
				p.Reportf(n.Value.Pos(), "range value copies an element containing a sync mutex (type %s); range over indices or pointers (or waive with //txlint:lock <reason>)", p.TypeOf(n.Value))
			}
		}
		return true
	})
}

// isCopySource reports whether an expression produces its value by copying
// existing storage (as opposed to constructing a fresh value, which is the
// legitimate way to make a mutex-bearing struct).
func isCopySource(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.MUL
	}
	return false
}
