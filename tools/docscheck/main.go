// Command docscheck fails when any markdown file in the repository
// contains an intra-repo link to a file that does not exist. It is the
// `make docs-check` step CI runs: the documentation overhaul made the
// markdown files cross-reference each other (README → EXPERIMENTS →
// baselines → ARCHITECTURE), and a renamed baseline or section file
// should break the build, not the reader.
//
// Checked: inline links and images `[text](target)` whose target is not a
// URL (scheme://... or mailto:) and not a pure intra-page anchor (#...).
// Targets are resolved relative to the file containing them; a trailing
// #fragment is ignored (anchors are not validated — markdown renderers
// disagree on heading slugs).
//
// Usage: go run ./tools/docscheck [root]   (root defaults to ".")
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches [text](target) and ![alt](target); the target group stops
// at the first ')' or whitespace, which covers every link in this repo
// (no titles, no parenthesised paths).
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and test fixtures.
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "docscheck: %s: broken link %q (resolved %s)\n",
					path, m[1], resolved)
				broken++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken intra-repo link(s)\n", broken)
		os.Exit(1)
	}
}
