module txconcur

go 1.24
