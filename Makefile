# Convenience targets; tier-1 verification stays plain
# `go build ./... && go test ./...`.

.PHONY: build test race bench docs-check vet lint

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# go vet over everything, plus the delta-write packages by name so the
# critical list survives any future narrowing of the wildcard.
vet:
	go vet ./...
	go vet ./internal/mvstore/... ./internal/stm/... ./internal/exec/... ./internal/core/... ./internal/chainsim/... ./internal/bench/... ./internal/heat/... ./cmd/...

# txlint: the determinism-and-discipline analyzer suite (tools/lint).
# Fails on any unwaived finding; -waived lists accepted waivers.
lint:
	go run ./tools/lint ./...

# One-iteration pass over every recorded-baseline experiment.
bench:
	go test -run NONE -bench 'Comparison$$' -benchtime 1x .

# Fails on intra-repo markdown links that point at missing files
# (tools/docscheck). CI runs this after vet.
docs-check:
	go run ./tools/docscheck
