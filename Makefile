# Convenience targets; tier-1 verification stays plain
# `go build ./... && go test ./...`.

.PHONY: build test race bench docs-check

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# One-iteration pass over every recorded-baseline experiment.
bench:
	go test -run NONE -bench 'Comparison$$' -benchtime 1x .

# Fails on intra-repo markdown links that point at missing files
# (tools/docscheck). CI runs this after vet.
docs-check:
	go run ./tools/docscheck
